package exp

import (
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/topo"
)

// ShardOptions scales the sharded-runner sweep.
type ShardOptions struct {
	Seed int64
	// Buildings/APsPerBuilding/ClientsPerAP size the grid campus. The
	// benchmark default is the 1,000-AP campus (50 buildings × 20 APs × 2
	// clients).
	Buildings, APsPerBuilding, ClientsPerAP int
	// Duration is the simulated time per point.
	Duration sim.Time
	Warmup   sim.Time
	// ShardCounts are the worker counts to sweep (default 1, 2, 4, 8).
	ShardCounts []int
}

// ShardPoint is one sweep point: the same scenario executed at one worker
// count.
type ShardPoint struct {
	Workers int     `json:"workers"`
	WallSec float64 `json:"wall_sec"`
	// Speedup is serial wall-clock over this point's wall-clock.
	Speedup float64 `json:"speedup"`
	// Hash fingerprints the run's merged output (per-link goodput, delays,
	// delivery counters); identical hashes across points are the
	// determinism gate.
	Hash string `json:"hash"`
}

// ShardSweepResult is the campus-scale sharded-runner benchmark: wall-clock
// and output hash per worker count, plus the partition shape.
type ShardSweepResult struct {
	Buildings      int          `json:"buildings"`
	APsPerBuilding int          `json:"aps_per_building"`
	ClientsPerAP   int          `json:"clients_per_ap"`
	APs            int          `json:"aps"`
	Nodes          int          `json:"nodes"`
	Links          int          `json:"links"`
	Domains        int          `json:"domains"`
	CutEdges       int          `json:"cut_edges"`
	CrossLinkPairs int          `json:"cross_link_pairs"`
	Windows        int          `json:"windows"`
	Messages       int          `json:"messages"`
	Points         []ShardPoint `json:"points"`
	// IdenticalOutput reports whether every point produced the same output
	// hash — the sharded runner's determinism contract.
	IdenticalOutput bool `json:"identical_output"`
}

func (o ShardOptions) withDefaults() ShardOptions {
	if o.Buildings == 0 {
		o.Buildings = 50
	}
	if o.APsPerBuilding == 0 {
		o.APsPerBuilding = 20
	}
	if o.ClientsPerAP == 0 {
		o.ClientsPerAP = 2
	}
	if o.Duration == 0 {
		o.Duration = 200 * sim.Millisecond
	}
	if len(o.ShardCounts) == 0 {
		o.ShardCounts = []int{1, 2, 4, 8}
	}
	return o
}

// ShardSweep runs the grid-campus scenario through the interference-domain
// sharded runner at each worker count and reports wall-clock plus an output
// fingerprint per point. The scenario is identical across points — only the
// worker count varies — so differing hashes mean a determinism bug, and the
// wall-clock ratio is the sharding speedup.
func ShardSweep(o ShardOptions) (ShardSweepResult, error) {
	o = o.withDefaults()
	net := topo.GridCampus(o.Seed, o.Buildings, o.APsPerBuilding, o.ClientsPerAP)
	res := ShardSweepResult{
		Buildings:      o.Buildings,
		APsPerBuilding: o.APsPerBuilding,
		ClientsPerAP:   o.ClientsPerAP,
		APs:            len(net.APs),
		Nodes:          net.NumNodes(),
	}
	scenario := func() core.Scenario {
		return core.Scenario{
			Net:      net,
			Downlink: true,
			Uplink:   true,
			Scheme:   core.DOMINO,
			Seed:     o.Seed,
			Duration: o.Duration,
			Warmup:   o.Warmup,
		}
	}
	for i, workers := range o.ShardCounts {
		t0 := time.Now()
		r, rep, err := shard.Run(scenario(), shard.Options{Workers: workers})
		if err != nil {
			return res, fmt.Errorf("exp: shard sweep workers=%d: %w", workers, err)
		}
		wall := time.Since(t0).Seconds()
		if i == 0 {
			res.Links = len(r.Links)
			res.Domains = rep.Partition.Stats.Domains
			res.CutEdges = rep.Partition.Stats.CutEdges
			res.CrossLinkPairs = rep.Partition.Stats.CrossLinkPairs
			res.Windows = rep.Windows
			res.Messages = rep.Messages
		}
		res.Points = append(res.Points, ShardPoint{
			Workers: workers,
			WallSec: wall,
			Hash:    resultHash(r),
		})
	}
	res.IdenticalOutput = true
	for _, p := range res.Points {
		if p.Hash != res.Points[0].Hash {
			res.IdenticalOutput = false
		}
	}
	if serial := res.Points[0].WallSec; serial > 0 {
		for i := range res.Points {
			res.Points[i].Speedup = serial / res.Points[i].WallSec
		}
	}
	return res, nil
}

// CorePoint is one point of the cores-vs-throughput curve: the same sharded
// scenario executed at one GOMAXPROCS setting.
type CorePoint struct {
	Cores   int     `json:"cores"`
	Workers int     `json:"workers"`
	WallSec float64 `json:"wall_sec"`
	// SimPerWallSec is simulated seconds advanced per wall-clock second —
	// the throughput the curve tracks as cores are added.
	SimPerWallSec float64 `json:"sim_per_wall_sec"`
	// Speedup is the 1-core wall-clock over this point's wall-clock.
	Speedup float64 `json:"speedup"`
	Hash    string  `json:"hash"`
}

// CoresCurve pins the shard worker count and sweeps GOMAXPROCS instead: where
// ShardSweep asks "how well does the partition decompose", this asks "how
// does the same decomposition convert physical cores into throughput". Points
// above NumCPU are skipped (they would measure oversubscription, not scaling),
// so on a single-core host the curve honestly collapses to one point. The
// previous GOMAXPROCS value is restored before returning.
func CoresCurve(o ShardOptions, workers int, cores []int) ([]CorePoint, error) {
	o = o.withDefaults()
	if workers <= 0 {
		workers = o.ShardCounts[len(o.ShardCounts)-1]
	}
	if len(cores) == 0 {
		cores = []int{1, 2, 4, 8}
	}
	net := topo.GridCampus(o.Seed, o.Buildings, o.APsPerBuilding, o.ClientsPerAP)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var out []CorePoint
	for _, c := range cores {
		if c > runtime.NumCPU() {
			continue
		}
		runtime.GOMAXPROCS(c)
		t0 := time.Now()
		r, _, err := shard.Run(core.Scenario{
			Net:      net,
			Downlink: true,
			Uplink:   true,
			Scheme:   core.DOMINO,
			Seed:     o.Seed,
			Duration: o.Duration,
			Warmup:   o.Warmup,
		}, shard.Options{Workers: workers})
		if err != nil {
			return out, fmt.Errorf("exp: cores curve gomaxprocs=%d: %w", c, err)
		}
		wall := time.Since(t0).Seconds()
		p := CorePoint{Cores: c, Workers: workers, WallSec: wall, Hash: resultHash(r)}
		if wall > 0 {
			p.SimPerWallSec = float64(o.Duration) / float64(sim.Second) / wall
		}
		out = append(out, p)
	}
	if len(out) > 0 && out[0].WallSec > 0 {
		for i := range out {
			out[i].Speedup = out[0].WallSec / out[i].WallSec
		}
	}
	return out, nil
}

// resultHash fingerprints a run's measurements: every per-link goodput and
// delivery tally, the aggregate numbers, and the delay sums. Any divergence
// between two runs of the same scenario shows up here.
func resultHash(r core.Result) string {
	h := fnv.New64a()
	f64 := func(v float64) {
		bits := math.Float64bits(v)
		var b [8]byte
		for i := range b {
			b[i] = byte(bits >> (8 * i))
		}
		h.Write(b[:])
	}
	f64(r.AggregateMbps)
	f64(r.DataMbps)
	f64(r.Fairness)
	f64(float64(r.MeanDelay))
	f64(float64(r.MeanDelayPerLink))
	for _, v := range r.PerLinkMbps {
		f64(v)
	}
	for id := 0; id < r.Collector.NumLinks(); id++ {
		s := r.Collector.Link(id)
		f64(float64(s.DeliveredPkts))
		f64(float64(s.DeliveredB))
		f64(float64(s.DroppedPkts))
		f64(float64(s.DelaySum))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
