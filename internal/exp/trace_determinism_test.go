package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// fig14TraceOpts is the smallest Fig 14 configuration that exercises the
// sharded tracer across several runs without dominating the test suite.
func fig14TraceOpts(workers int) Options {
	return Options{
		Seed:     1,
		Duration: 250 * sim.Millisecond,
		Warmup:   50 * sim.Millisecond,
		Runs:     2,
		Workers:  workers,
	}
}

// TestFig14TraceDeterministicAcrossWorkers is the observability determinism
// contract: the merged NDJSON trace of a parallel experiment — with causal
// spans enabled, since tracing turns them on — is byte-identical at any
// worker count, because span IDs are allocated per run, every run writes its
// own shard, and shards merge in run order.
func TestFig14TraceDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run Fig 14 trace comparison")
	}
	var serial, two, fanned bytes.Buffer

	o := fig14TraceOpts(1)
	o.TraceSink = &serial
	r1 := must(Fig14(o))

	o = fig14TraceOpts(2)
	o.TraceSink = &two
	must(Fig14(o))

	o = fig14TraceOpts(8)
	o.TraceSink = &fanned
	r8 := must(Fig14(o))

	if serial.Len() == 0 {
		t.Fatal("traced Fig 14 produced an empty trace")
	}
	if !bytes.Equal(serial.Bytes(), two.Bytes()) {
		t.Fatalf("trace differs between workers=1 (%d bytes) and workers=2 (%d bytes)",
			serial.Len(), two.Len())
	}
	if !bytes.Equal(serial.Bytes(), fanned.Bytes()) {
		t.Fatalf("trace differs between workers=1 (%d bytes) and workers=8 (%d bytes)",
			serial.Len(), fanned.Len())
	}
	if g1, g8 := r1.Gains.N(), r8.Gains.N(); g1 != g8 {
		t.Fatalf("gain counts differ: %d vs %d", g1, g8)
	}

	// The stream must parse back into records, open with the first run's
	// run_start, alternate DCF/DOMINO run delimiters in run order, and carry
	// span annotations (DOMINO runs allocate spans when traced).
	var schemes []string
	var n, spanned int
	err := obs.ParseNDJSON(&serial, func(r obs.Record) error {
		n++
		if r.Kind == obs.KindRunStart {
			schemes = append(schemes, r.Aux)
		}
		if r.Span != 0 || r.Parent != 0 {
			spanned++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("merged trace does not parse: %v", err)
	}
	if n == 0 {
		t.Fatal("no records parsed")
	}
	if spanned == 0 {
		t.Fatal("no record carries a causal span; spans should be on in traced runs")
	}
	want := "DCF DOMINO DCF DOMINO"
	if got := strings.Join(schemes, " "); got != want {
		t.Fatalf("run_start sequence = %q, want %q", got, want)
	}
}

// TestFig2TraceSink checks the per-scheme sharding of the motivating figure.
func TestFig2TraceSink(t *testing.T) {
	var buf bytes.Buffer
	o := Options{Seed: 1, Duration: 200 * sim.Millisecond, Runs: 1, Trials: 1,
		Workers: 2, TraceSink: &buf}
	Fig2(o)
	var schemes []string
	if err := obs.ParseNDJSON(&buf, func(r obs.Record) error {
		if r.Kind == obs.KindRunStart {
			schemes = append(schemes, r.Aux)
		}
		return nil
	}); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if got := strings.Join(schemes, " "); got != "DCF CENTAUR DOMINO Omniscient" {
		t.Fatalf("run_start sequence = %q", got)
	}
}
