package exp

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topo"
)

// TestFig14TraceMatchesReferenceKernel is the tentpole's end-to-end safety
// net: the pooled monomorphic event queue must not perturb the simulation in
// any observable way. It runs the small Fig 14 configuration twice — once on
// the pooled kernel, once on the retained container/heap reference queue —
// and demands byte-identical NDJSON traces.
func TestFig14TraceMatchesReferenceKernel(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run Fig 14 trace comparison")
	}
	run := func() *bytes.Buffer {
		var buf bytes.Buffer
		o := fig14TraceOpts(1)
		o.TraceSink = &buf
		must(Fig14(o))
		return &buf
	}
	pooled := run()

	sim.SetReferenceQueue(true)
	reference := run()
	sim.SetReferenceQueue(false)

	if pooled.Len() == 0 {
		t.Fatal("traced Fig 14 produced an empty trace")
	}
	if !bytes.Equal(pooled.Bytes(), reference.Bytes()) {
		t.Fatalf("trace differs between pooled kernel (%d bytes) and reference queue (%d bytes)",
			pooled.Len(), reference.Len())
	}
}

// TestDCFScenarioMatchesReferenceKernel repeats the differential check on a
// single saturated DCF run over the hidden-terminal topology (heavy Cancel
// traffic: backoff pauses and NAV updates cancel armed fire events
// constantly, exercising the pool's eager-removal path).
func TestDCFScenarioMatchesReferenceKernel(t *testing.T) {
	scenario := func() (obs.Buffer, core.Result) {
		var buf obs.Buffer
		res := core.Run(core.Scenario{
			Net:      topo.Figure7(),
			Downlink: true,
			Uplink:   true,
			Scheme:   core.DCF,
			Seed:     7,
			Duration: 300 * sim.Millisecond,
			Traffic:  core.Saturated,
			Tracer:   &buf,
		})
		return buf, res
	}
	pooledBuf, pooledRes := scenario()

	sim.SetReferenceQueue(true)
	refBuf, refRes := scenario()
	sim.SetReferenceQueue(false)

	pr, rr := pooledBuf.Records(), refBuf.Records()
	if len(pr) == 0 {
		t.Fatal("DCF run produced no trace records")
	}
	if len(pr) != len(rr) {
		t.Fatalf("record counts differ: pooled %d, reference %d", len(pr), len(rr))
	}
	for i := range pr {
		if pr[i] != rr[i] {
			t.Fatalf("record %d diverged:\npooled    %+v\nreference %+v", i, pr[i], rr[i])
		}
	}
	if pooledRes.AggregateMbps != refRes.AggregateMbps {
		t.Fatalf("throughput diverged: pooled %.6f, reference %.6f",
			pooledRes.AggregateMbps, refRes.AggregateMbps)
	}
}
