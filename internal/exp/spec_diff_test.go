package exp

// Differential safety net for the registry/spec refactor. The golden SHA-256
// hashes below pin the trace byte format at exactly these configurations;
// both the registry lookup via core.Run AND the declarative spec path via
// core.BuildScenario/RunScenario must reproduce them byte for byte and the
// throughputs digit for digit. The aggregate throughputs are the original
// pre-refactor values — they must never drift. The trace hashes were
// re-captured when causal spans and packet-lifecycle records were added to
// the format (records gained sp/pa fields and pkt_enqueue/pkt_deliver
// kinds); the runs themselves are schedule-identical to the pre-refactor
// pipeline, which the unchanged throughputs prove.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/topo"
)

func sha(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// singleRunGoldens: one saturated 300 ms run per scheme on the Fig 7 network
// (downlink + uplink), NDJSON-traced. Hashes and aggregate throughputs come
// from the pre-refactor code.
var singleRunGoldens = []struct {
	scheme    string
	enum      core.Scheme
	seed      int64
	traceSHA  string
	aggregate string // %.6f Mbps
}{
	{"DCF", core.DCF, 7, "363ee1458fb893fd12e8688de3792db5c8ed5d876ed94849aac55d21c48c9280", "16.616107"},
	{"CENTAUR", core.CENTAUR, 3, "e9c76dcb15350db4e0be36b77102837718a65b1268158d95641feef1a368704e", "12.806827"},
	{"DOMINO", core.DOMINO, 5, "a86eb06335f681d8e26ccaa167dc5a89c5accf6e77e3c290e4a59b53911fcd38", "18.814293"},
	{"Omniscient", core.Omniscient, 9, "36a9acac06713075e4ee8687ac84b6e83ad2f5ad5a184c31ef7ab72727104a02", "19.715413"},
}

// runLegacy runs through the programmatic Scenario with the Scheme enum — the
// same entry point the pre-refactor goldens were captured through.
func runLegacy(t *testing.T, enum core.Scheme, seed int64) (string, string) {
	t.Helper()
	var buf bytes.Buffer
	nd := obs.NewNDJSON(&buf)
	res := core.Run(core.Scenario{
		Net:      topo.Figure7(),
		Downlink: true,
		Uplink:   true,
		Scheme:   enum,
		Seed:     seed,
		Duration: 300 * sim.Millisecond,
		Traffic:  core.Saturated,
		Tracer:   nd,
	})
	if err := nd.Flush(); err != nil {
		t.Fatal(err)
	}
	return sha(buf.Bytes()), fmt.Sprintf("%.6f", res.AggregateMbps)
}

// runSpec runs the equivalent declarative spec through BuildScenario +
// RunScenario (the core.RunE path, with the tracer attached the way the CLI
// does).
func runSpec(t *testing.T, schemeName string, seed int64) (string, string) {
	t.Helper()
	sc, err := core.BuildScenario(spec.Spec{
		Scheme:   schemeName,
		Topology: spec.Topology{Kind: "fig7"},
		Seed:     seed,
		Duration: spec.Duration(300 * sim.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	nd := obs.NewNDJSON(&buf)
	sc.Tracer = nd
	res, err := core.RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Flush(); err != nil {
		t.Fatal(err)
	}
	return sha(buf.Bytes()), fmt.Sprintf("%.6f", res.AggregateMbps)
}

func TestSchemesMatchPreRefactorGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("four traced 300 ms runs per path")
	}
	for _, g := range singleRunGoldens {
		g := g
		t.Run(g.scheme, func(t *testing.T) {
			legacySHA, legacyAgg := runLegacy(t, g.enum, g.seed)
			if legacySHA != g.traceSHA {
				t.Errorf("legacy path trace hash %s != pre-refactor golden %s", legacySHA, g.traceSHA)
			}
			if legacyAgg != g.aggregate {
				t.Errorf("legacy path aggregate %s Mbps != golden %s", legacyAgg, g.aggregate)
			}
			specSHA, specAgg := runSpec(t, g.scheme, g.seed)
			if specSHA != g.traceSHA {
				t.Errorf("spec path trace hash %s != pre-refactor golden %s", specSHA, g.traceSHA)
			}
			if specAgg != g.aggregate {
				t.Errorf("spec path aggregate %s Mbps != golden %s", specAgg, g.aggregate)
			}
		})
	}
}

// TestFig14MatchesPreRefactorGolden pins the experiment-harness output: the
// merged multi-run NDJSON trace and the gain-CDF CSV of the small Fig 14
// configuration, byte-identical to the pre-refactor pipeline.
func TestFig14MatchesPreRefactorGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run traced Fig 14")
	}
	const (
		goldenTraceSHA = "b023fc31fb52f70519c90db5b9872f37e191c3f29a1c6c9d409056ddaba4f9c8"
		goldenCSVSHA   = "24b473bfabef37b040796678a1621ec2593e47c4942780c40424f3703bf3de72"
	)
	var trace bytes.Buffer
	o := fig14TraceOpts(1)
	o.TraceSink = &trace
	r := must(Fig14(o))
	if got := sha(trace.Bytes()); got != goldenTraceSHA {
		t.Errorf("Fig 14 trace hash %s != pre-refactor golden %s (%d bytes)",
			got, goldenTraceSHA, trace.Len())
	}
	var csv bytes.Buffer
	if err := r.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if got := sha(csv.Bytes()); got != goldenCSVSHA {
		t.Errorf("Fig 14 CSV hash %s != pre-refactor golden %s:\n%s",
			got, goldenCSVSHA, csv.String())
	}
}
