package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestSchedulerSweep(t *testing.T) {
	o := Options{Seed: 1, Duration: 600 * sim.Millisecond, Warmup: 100 * sim.Millisecond}
	r, err := SchedulerSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Schedulers) < 4 {
		t.Fatalf("schedulers = %v, want the full registry (>= 4)", r.Schedulers)
	}
	for i, name := range r.Schedulers {
		if r.ThroughputMbps[i] < 5 {
			t.Errorf("%s: %.2f Mbps, want a live chain", name, r.ThroughputMbps[i])
		}
		if r.Fairness[i] <= 0 || r.Fairness[i] > 1.0001 {
			t.Errorf("%s: Jain fairness %.3f out of range", name, r.Fairness[i])
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range r.Schedulers {
		if !strings.Contains(out, name) {
			t.Errorf("output missing scheduler %s", name)
		}
	}
	if !strings.Contains(out, "scheduler,throughput_mbps,fairness,delay_us,self_starts") {
		t.Error("CSV header missing")
	}
}
