package exp

import (
	"fmt"
	"io"

	"repro/internal/dcf"
	"repro/internal/domino"
	"repro/internal/mac"
	"repro/internal/parallel"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// CoexistResult measures the §5 CFP/CoP split (Fig 15): a DOMINO cell and an
// external (un-schedulable) DCF pair share one collision domain. With no
// contention period the external pair starves behind DOMINO's NAV-protected
// chain; opening a CoP after every batch gives it a proportional share.
type CoexistResult struct {
	CoPMs []float64
	// DominoMbps/ExternalMbps per CoP setting.
	DominoMbps   []float64
	ExternalMbps []float64
}

// coexistNet builds four nodes in one contention domain: AP0/C1 (DOMINO)
// plus an external AP2/C3 pair outside DOMINO's control. All four share the
// channel and the links mutually interfere, so access control decides who
// gets air time.
func coexistNet() *topo.Network {
	return topo.TwoPairs(topo.SameContention)
}

// Coexist sweeps the CoP duration.
func Coexist(o Options) CoexistResult {
	o = o.withDefaults()
	res := CoexistResult{CoPMs: []float64{0, 2, 5, 10}}
	type share struct{ dom, ext float64 }
	shares := parallel.Map(o.Workers, len(res.CoPMs), func(i int) share {
		dom, ext := coexistRun(o, sim.Millis(res.CoPMs[i]))
		return share{dom, ext}
	})
	for _, s := range shares {
		res.DominoMbps = append(res.DominoMbps, s.dom)
		res.ExternalMbps = append(res.ExternalMbps, s.ext)
	}
	return res
}

// coexistRun wires a DOMINO engine (pair 0) and a plain DCF engine (pair 1)
// onto one medium and saturates both.
func coexistRun(o Options, cop sim.Time) (dominoMbps, externalMbps float64) {
	net := coexistNet()
	k := sim.New(o.Seed)
	medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())

	// DOMINO side: pair 0 only (AP0, C1), downlink + uplink.
	domLinks := []*topo.Link{
		{ID: 0, Sender: 0, Receiver: 1, AP: 0, Downlink: true},
		{ID: 1, Sender: 1, Receiver: 0, AP: 0, Downlink: false},
	}
	domNet := &topo.Network{
		RSS:  net.RSS,
		IsAP: net.IsAP,
		APOf: net.APOf,
		APs:  []phy.NodeID{0},
	}
	g := topo.NewConflictGraph(domNet, domLinks, phy.DefaultConfig(), phy.Rate12)
	domHub := &mac.Hub{}
	dcfg := domino.DefaultConfig()
	dcfg.CoPDuration = cop
	domEngine := domino.New(k, medium, g, domHub, dcfg)
	domColl := stats.NewCollector(len(domLinks), o.Warmup)
	domHub.Add(domColl)
	for _, l := range domLinks {
		s := traffic.NewSaturated(k, domEngine, l, 512, 8)
		domHub.Add(s)
		s.Start()
	}

	// External side: pair 1 (AP2 → C3) under plain DCF.
	extLinks := []*topo.Link{
		{ID: 0, Sender: 2, Receiver: 3, AP: 2, Downlink: true},
	}
	extHub := &mac.Hub{}
	extEngine := dcf.New(k, medium, extLinks, extHub, dcf.DefaultConfig())
	extColl := stats.NewCollector(len(extLinks), o.Warmup)
	extHub.Add(extColl)
	for _, l := range extLinks {
		s := traffic.NewSaturated(k, extEngine, l, 512, 8)
		extHub.Add(s)
		s.Start()
	}

	domEngine.Start()
	extEngine.Start()
	k.RunUntil(o.Duration)
	return domColl.AggregateMbps(o.Duration), extColl.AggregateMbps(o.Duration)
}

// Print renders the coexistence sweep.
func (r CoexistResult) Print(w io.Writer) {
	fmt.Fprintln(w, "§5 / Fig 15: CFP/CoP coexistence with external DCF traffic")
	hline(w, 56)
	fmt.Fprintf(w, "%-18s", "CoP per batch (ms)")
	for _, c := range r.CoPMs {
		fmt.Fprintf(w, "%9.0f", c)
	}
	fmt.Fprintf(w, "\n%-18s", "DOMINO (Mbps)")
	for _, v := range r.DominoMbps {
		fmt.Fprintf(w, "%9.2f", v)
	}
	fmt.Fprintf(w, "\n%-18s", "external (Mbps)")
	for _, v := range r.ExternalMbps {
		fmt.Fprintf(w, "%9.2f", v)
	}
	fmt.Fprintln(w)
}
