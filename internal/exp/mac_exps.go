package exp

import (
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/dcf"
	"repro/internal/domino"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Fig2Result is the motivating comparison on the Fig 1 network.
type Fig2Result struct {
	Schemes   []core.Scheme
	LinkNames []string
	// PerLink[scheme][link] in Mbps; Overall[scheme] aggregates.
	PerLink map[core.Scheme][]float64
	Overall map[core.Scheme]float64
}

// Fig2 runs all four schemes on the Fig 1 network with the three saturated
// flows (AP1→C1, C2→AP2, AP3→C3).
func Fig2(o Options) Fig2Result {
	o = o.withDefaults()
	res := Fig2Result{
		Schemes:   []core.Scheme{core.DCF, core.CENTAUR, core.DOMINO, core.Omniscient},
		LinkNames: []string{"AP1→C1", "C2→AP2", "AP3→C3"},
		PerLink:   map[core.Scheme][]float64{},
		Overall:   map[core.Scheme]float64{},
	}
	// One tracer shard per scheme, concatenated in scheme order.
	var sharded *obs.Sharded
	if o.TraceSink != nil {
		sharded = obs.NewSharded(len(res.Schemes))
	}
	runs := parallel.Map(o.Workers, len(res.Schemes), func(i int) core.Result {
		net := topo.Figure1()
		links := topo.Figure1Links(net)
		return core.Run(core.Scenario{
			Net: net, Links: links, Scheme: res.Schemes[i], Seed: o.Seed,
			Duration: o.Duration, Warmup: o.Warmup, Traffic: core.Saturated,
			Tracer: shardTracer(sharded, i),
		})
	})
	for i, s := range res.Schemes {
		res.PerLink[s] = runs[i].PerLinkMbps
		res.Overall[s] = runs[i].AggregateMbps
	}
	if sharded != nil {
		if _, err := sharded.WriteTo(o.TraceSink); err != nil {
			fmt.Fprintf(os.Stderr, "exp: Fig2 trace write: %v\n", err)
		}
	}
	return res
}

// Print renders the Fig 2 bars as a table.
func (r Fig2Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 2: throughput (Mbps) on the Fig 1 network")
	hline(w, 58)
	fmt.Fprintf(w, "%-12s", "scheme")
	for _, n := range r.LinkNames {
		fmt.Fprintf(w, "%9s", n)
	}
	fmt.Fprintf(w, "%9s\n", "overall")
	for _, s := range r.Schemes {
		fmt.Fprintf(w, "%-12s", s)
		for _, v := range r.PerLink[s] {
			fmt.Fprintf(w, "%9.2f", v)
		}
		fmt.Fprintf(w, "%9.2f\n", r.Overall[s])
	}
}

// Table2Result: the USRP prototype comparison (aggregate throughput in the
// three placements).
type Table2Result struct {
	Scenarios []topo.TwoPairScenario
	// Mbps[scheme][scenario].
	Domino []float64
	DCF    []float64
}

// Table2 reproduces the USRP prototype experiment: two AP-client pairs in
// same-contention, hidden and exposed placements, DOMINO vs DCF. The USRP
// PHY is modelled by inflating per-frame processing time (GNURadio host
// latency) and slowing the contention slots; absolute rates are therefore
// arbitrary — the ratios carry the result.
func Table2(o Options) Table2Result {
	o = o.withDefaults()
	// USRP-like parameters: ~25 ms of host latency around every frame and
	// ~1 ms effective slots. Rates come out in the tens of Kbps as in the
	// paper.
	const hostLatency = 25 * sim.Millisecond
	res := Table2Result{
		Scenarios: []topo.TwoPairScenario{topo.SameContention, topo.HiddenTerminals, topo.ExposedTerminals},
	}
	// One task per (placement, scheme) cell; each builds its own network
	// because engines register listeners on the medium.
	type cell struct{ dcf, domino float64 }
	cells := parallel.Map(o.Workers, len(res.Scenarios)*2, func(i int) cell {
		sc := res.Scenarios[i/2]
		if i%2 == 0 {
			d := core.Run(core.Scenario{
				Net: topo.TwoPairs(sc), Downlink: true, Scheme: core.DCF, Seed: o.Seed,
				Duration: o.Duration * 10, Warmup: o.Warmup, Traffic: core.Saturated,
				TuneDCF: func(c *dcf.Config) {
					c.ExtraFrameTime = hostLatency
					c.SlotTime = sim.Millisecond
					c.SIFS = 2 * sim.Millisecond
					c.DIFS = 4 * sim.Millisecond
				},
			})
			return cell{dcf: d.AggregateMbps}
		}
		m := core.Run(core.Scenario{
			Net: topo.TwoPairs(sc), Downlink: true, Scheme: core.DOMINO, Seed: o.Seed,
			Duration: o.Duration * 10, Warmup: o.Warmup, Traffic: core.Saturated,
			TuneDomino: func(c *domino.Config) {
				c.ExtraFrameTime = hostLatency
			},
		})
		return cell{domino: m.AggregateMbps}
	})
	for i := range res.Scenarios {
		res.DCF = append(res.DCF, cells[2*i].dcf)
		res.Domino = append(res.Domino, cells[2*i+1].domino)
	}
	return res
}

// Print renders Table 2 (Kbps, as in the paper).
func (r Table2Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 2: aggregate throughput (Kbps), USRP-grade PHY")
	hline(w, 46)
	fmt.Fprintf(w, "%-10s", "scheme")
	for _, sc := range r.Scenarios {
		fmt.Fprintf(w, "%9s", sc)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s", "DOMINO")
	for _, v := range r.Domino {
		fmt.Fprintf(w, "%9.2f", v*1000)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s", "DCF")
	for _, v := range r.DCF {
		fmt.Fprintf(w, "%9.2f", v*1000)
	}
	fmt.Fprintln(w)
	for i := range r.Scenarios {
		if r.DCF[i] > 0 {
			fmt.Fprintf(w, "%v gain: %.2fx  ", r.Scenarios[i], r.Domino[i]/r.DCF[i])
		}
	}
	fmt.Fprintln(w)
}

// Table3Result: aggregate throughput on the Fig 13 exposed-link topologies.
type Table3Result struct {
	// Mbps[topology][scheme]: topologies {13a, 13b}, schemes
	// {DOMINO, CENTAUR, DCF}.
	Mbps [2][3]float64
}

// Table3 reproduces Table 3: CENTAUR collapses below DCF on Fig 13(b) while
// DOMINO is unaffected.
func Table3(o Options) Table3Result {
	o = o.withDefaults()
	var res Table3Result
	builders := []func() *topo.Network{topo.Figure13a, topo.Figure13b}
	schemes := []core.Scheme{core.DOMINO, core.CENTAUR, core.DCF}
	// One task per (topology, scheme) cell; each rebuilds its figure network
	// because engines register listeners on the medium (RSS matrices are
	// shared read-only).
	mbps := parallel.Map(o.Workers, len(builders)*len(schemes), func(i int) float64 {
		ti, si := i/len(schemes), i%len(schemes)
		r := core.Run(core.Scenario{
			Net: builders[ti](), Downlink: true, Scheme: schemes[si], Seed: o.Seed,
			Duration: o.Duration, Warmup: o.Warmup, Traffic: core.Saturated,
		})
		return r.AggregateMbps
	})
	for ti := range builders {
		for si := range schemes {
			res.Mbps[ti][si] = mbps[ti*len(schemes)+si]
		}
	}
	return res
}

// Print renders Table 3.
func (r Table3Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 3: aggregate throughput (Mbps), 4 exposed-link topologies")
	hline(w, 56)
	fmt.Fprintf(w, "%-14s%10s%10s%10s\n", "topology", "DOMINO", "CENTAUR", "DCF")
	names := []string{"Fig 13(a)", "Fig 13(b)"}
	for ti, row := range r.Mbps {
		fmt.Fprintf(w, "%-14s%10.2f%10.2f%10.2f\n", names[ti], row[0], row[1], row[2])
	}
}

// Fig11Result: maximum transmission misalignment per slot index, per wired
// jitter setting.
type Fig11Result struct {
	StdsUs []float64
	Slots  []int
	// MaxUs[stdIdx][slotIdx] in µs.
	MaxUs [][]float64
}

// Fig11 varies the wired latency variance and records how the initial
// misalignment converges within a few slots (paper Fig 11, on T(10,2)).
func Fig11(o Options) (Fig11Result, error) {
	o = o.withDefaults()
	res := Fig11Result{StdsUs: []float64{20, 40, 60, 80}, Slots: []int{0, 1, 2, 3, 4, 5}}
	rows := parallel.Map(o.Workers, len(res.StdsUs), func(i int) errCell[[]float64] {
		net, err := T10x2(o.Seed)
		if err != nil {
			return errCell[[]float64]{err: err}
		}
		r, err := core.RunScenario(core.Scenario{
			Net: net, Downlink: true, Uplink: true, Scheme: core.DOMINO,
			Seed: o.Seed, Duration: o.Duration, Traffic: core.Saturated,
			MisalignSlots: len(res.Slots) + 2,
			TuneDomino: func(c *domino.Config) {
				c.WiredLatencyStd = sim.Micros(res.StdsUs[i])
			},
		})
		if err != nil {
			return errCell[[]float64]{err: err}
		}
		row := make([]float64, 0, len(res.Slots))
		for _, slot := range res.Slots {
			row = append(row, r.Misalign.Max(slot).Microseconds())
		}
		return errCell[[]float64]{v: row}
	})
	if err := firstErr(rows); err != nil {
		return res, err
	}
	for _, c := range rows {
		res.MaxUs = append(res.MaxUs, c.v)
	}
	return res, nil
}

// Print renders the Fig 11 series.
func (r Fig11Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 11: max TX misalignment (µs) at the start of the CFP, T(10,2)")
	hline(w, 60)
	fmt.Fprintf(w, "%-14s", "jitter σ (µs)")
	for _, s := range r.Slots {
		fmt.Fprintf(w, "  slot%-2d", s)
	}
	fmt.Fprintln(w)
	for i, std := range r.StdsUs {
		fmt.Fprintf(w, "%-14.0f", std)
		for _, v := range r.MaxUs[i] {
			fmt.Fprintf(w, "%8.1f", v)
		}
		fmt.Fprintln(w)
	}
}

// Fig10Event is one line of the microscope timeline.
type Fig10Event = domino.TraceEvent

// Fig10 runs the Fig 7 network with all flows saturated and returns the
// engine trace of the first maxEvents events — the Fig 10 timeline.
func Fig10(o Options, maxEvents int) []Fig10Event {
	o = o.withDefaults()
	var events []Fig10Event
	net := topo.Figure7()
	core.Run(core.Scenario{
		Net: net, Downlink: true, Uplink: true, Scheme: core.DOMINO,
		Seed: o.Seed, Duration: o.Duration, Traffic: core.Saturated,
		Trace: func(ev domino.TraceEvent) {
			if len(events) < maxEvents {
				events = append(events, ev)
			}
		},
	})
	return events
}

// PrintFig10 renders the timeline.
func PrintFig10(w io.Writer, events []Fig10Event) {
	fmt.Fprintln(w, "Fig 10: DOMINO timeline on the Fig 7 network (excerpt)")
	hline(w, 60)
	for _, ev := range events {
		link := ""
		if ev.Link != nil {
			link = ev.Link.String()
		}
		fmt.Fprintf(w, "%12v  slot %-4d %-10s node %-3d %s\n",
			ev.At, ev.Slot, ev.Kind, ev.Node, link)
	}
}
