package exp

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/domino"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Fig12Result holds the uplink-rate sweep for one transport (UDP or TCP):
// aggregate throughput, mean delay and Jain fairness per scheme per uplink
// rate, with downlink fixed at 10 Mbps (paper Fig 12).
type Fig12Result struct {
	Transport string
	UpMbps    []float64
	Schemes   []core.Scheme
	// Indexed [scheme][rate].
	ThroughputMbps [][]float64
	DelayUs        [][]float64
	Fairness       [][]float64
}

// Fig12 sweeps the uplink offered load on T(10,2). transport is core.UDPCBR
// or core.TCP.
func Fig12(o Options, transport core.TrafficKind) (Fig12Result, error) {
	o = o.withDefaults()
	name := "UDP"
	if transport == core.TCP {
		name = "TCP"
	}
	res := Fig12Result{
		Transport: name,
		UpMbps:    []float64{0, 2, 4, 6, 8, 10},
		Schemes:   []core.Scheme{core.DOMINO, core.CENTAUR, core.DCF},
	}
	// One task per (scheme, uplink-rate) cell of the sweep grid.
	nr := len(res.UpMbps)
	runs := parallel.Map(o.Workers, len(res.Schemes)*nr, func(i int) errCell[core.Result] {
		net, err := T10x2(o.Seed)
		if err != nil {
			return errCell[core.Result]{err: err}
		}
		r, err := core.RunScenario(core.Scenario{
			Net: net, Downlink: true, Uplink: true, Scheme: res.Schemes[i/nr],
			Seed: o.Seed, Duration: o.Duration, Warmup: o.Warmup,
			Traffic: transport, DownMbps: 10, UpMbps: res.UpMbps[i%nr],
		})
		return errCell[core.Result]{v: r, err: err}
	})
	if err := firstErr(runs); err != nil {
		return res, err
	}
	for si := range res.Schemes {
		tput := make([]float64, nr)
		delay := make([]float64, nr)
		fair := make([]float64, nr)
		for ri := 0; ri < nr; ri++ {
			r := runs[si*nr+ri].v
			tput[ri] = r.DataMbps
			delay[ri] = r.MeanDelayPerLink.Microseconds()
			fair[ri] = r.Fairness
		}
		res.ThroughputMbps = append(res.ThroughputMbps, tput)
		res.DelayUs = append(res.DelayUs, delay)
		res.Fairness = append(res.Fairness, fair)
	}
	return res, nil
}

// Print renders the three panels of one Fig 12 row.
func (r Fig12Result) Print(w io.Writer) {
	panel := func(title, unit string, data [][]float64, scale float64, prec int) {
		fmt.Fprintf(w, "Fig 12 %s %s (%s) vs uplink rate, T(10,2), downlink 10 Mbps\n",
			r.Transport, title, unit)
		hline(w, 64)
		fmt.Fprintf(w, "%-10s", "uplink")
		for _, u := range r.UpMbps {
			fmt.Fprintf(w, "%9.0f", u)
		}
		fmt.Fprintln(w)
		for i, s := range r.Schemes {
			fmt.Fprintf(w, "%-10s", s)
			for _, v := range data[i] {
				fmt.Fprintf(w, "%9.*f", prec, v*scale)
			}
			fmt.Fprintln(w)
		}
	}
	panel("throughput", "Mbps", r.ThroughputMbps, 1, 2)
	panel("delay", "µs", r.DelayUs, 1, 0)
	panel("fairness", "Jain", r.Fairness, 1, 3)
}

// Fig14Result is the CDF of DOMINO's throughput gain over DCF across random
// T(20,3) topologies.
type Fig14Result struct {
	Gains *stats.CDF
	// Skipped counts random placements on which a T(20,3) could not be
	// selected (reported, not hidden).
	Skipped int
}

// Fig14 runs `o.Runs` random 800×800 m placements (110 nodes, of which the
// T(20,3) selection uses 80), saturated UDP, and collects DOMINO/DCF
// aggregate-throughput ratios (paper Fig 14: gains 1.22–1.96, median 1.58).
func Fig14(o Options) (Fig14Result, error) {
	o = o.withDefaults()
	res := Fig14Result{Gains: &stats.CDF{}}
	type outcome struct {
		gains   *stats.CDF
		skipped bool
		err     error
	}
	// Tracing uses two shards per run (DCF then DOMINO), concatenated in run
	// order below, so the stream is identical at any worker count.
	var sharded *obs.Sharded
	if o.TraceSink != nil {
		sharded = obs.NewSharded(2 * o.Runs)
	}
	// Each placement derives its own seed from the run index (the scheme the
	// serial loop always used), so the set of outcomes is independent of
	// scheduling; the per-run CDF shards are then merged in run order below.
	outcomes := parallel.Map(o.Workers, o.Runs, func(run int) outcome {
		seed := parallel.Seed(o.Seed, run, parallel.DefaultStride)
		tr := topo.RandomTrace(seed, 110, 800)
		rng := rand.New(rand.NewSource(seed))
		net, err := topo.BuildT(tr, 20, 3, phy.DefaultConfig(), phy.Rate12, rng)
		if err != nil {
			return outcome{skipped: true}
		}
		dcfNet, err := rebuild(tr, seed)
		if err != nil {
			return outcome{err: err}
		}
		dcfRes, err := core.RunScenario(core.Scenario{
			Net: dcfNet, Downlink: true, Uplink: true, Scheme: core.DCF,
			Seed: seed, Duration: o.Duration, Warmup: o.Warmup,
			Traffic: core.UDPCBR, DownMbps: 10, UpMbps: 10,
			Tracer: shardTracer(sharded, 2*run),
		})
		if err != nil {
			return outcome{err: err}
		}
		domRes, err := core.RunScenario(core.Scenario{
			Net: net, Downlink: true, Uplink: true, Scheme: core.DOMINO,
			Seed: seed, Duration: o.Duration, Warmup: o.Warmup,
			Traffic: core.UDPCBR, DownMbps: 10, UpMbps: 10,
			Tracer: shardTracer(sharded, 2*run+1), TuneDomino: o.TuneDomino,
		})
		if err != nil {
			return outcome{err: err}
		}
		out := outcome{gains: &stats.CDF{}}
		if dcfRes.AggregateMbps > 0 {
			out.gains.Add(domRes.AggregateMbps / dcfRes.AggregateMbps)
		}
		return out
	})
	for _, out := range outcomes {
		if out.err != nil {
			return res, out.err
		}
		if out.skipped {
			res.Skipped++
			continue
		}
		res.Gains.Merge(out.gains)
	}
	if sharded != nil {
		if _, err := sharded.WriteTo(o.TraceSink); err != nil {
			fmt.Fprintf(os.Stderr, "exp: Fig14 trace write: %v\n", err)
		}
	}
	return res, nil
}

// rebuild reselects the same T(20,3) (same seed) for the second engine: each
// engine registers listeners on its own medium, but Network values are
// cheap. The first BuildT on the same trace and seed already succeeded, so
// an error here is a determinism bug worth surfacing, not hiding.
func rebuild(tr *topo.Trace, seed int64) (*topo.Network, error) {
	rng := rand.New(rand.NewSource(seed))
	net, err := topo.BuildT(tr, 20, 3, phy.DefaultConfig(), phy.Rate12, rng)
	if err != nil {
		return nil, fmt.Errorf("exp: Fig14 rebuild diverged at seed %d: %w", seed, err)
	}
	return net, nil
}

// Print renders the gain CDF.
func (r Fig14Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 14: CDF of DOMINO/DCF throughput gain, random T(20,3)")
	hline(w, 58)
	if r.Gains.N() == 0 {
		fmt.Fprintln(w, "no feasible topologies")
		return
	}
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
		fmt.Fprintf(w, "  p%-3.0f gain = %.2fx\n", q*100, r.Gains.Quantile(q))
	}
	if r.Skipped > 0 {
		fmt.Fprintf(w, "  (%d infeasible placements skipped)\n", r.Skipped)
	}
}

// PollingSweepResult: §5 batch-size (polling frequency) trade-off.
type PollingSweepResult struct {
	BatchSizes []int
	// Heavy traffic (5 Mbps/link) and light traffic (0.5 Mbps/link) rows.
	HeavyMbps, HeavyDelayUs []float64
	LightMbps, LightDelayUs []float64
}

// PollingSweep varies DOMINO's batch size under heavy and light UDP load on
// T(10,2) (paper §5 "Polling frequency").
func PollingSweep(o Options) (PollingSweepResult, error) {
	o = o.withDefaults()
	res := PollingSweepResult{BatchSizes: []int{4, 8, 12, 24, 48}}
	// One task per (batch size, load) cell: even indices heavy, odd light.
	type point struct{ mbps, delayUs float64 }
	points := parallel.Map(o.Workers, len(res.BatchSizes)*2, func(i int) errCell[point] {
		rate := 5.0
		if i%2 == 1 {
			rate = 0.5
		}
		net, err := T10x2(o.Seed)
		if err != nil {
			return errCell[point]{err: err}
		}
		r, err := core.RunScenario(core.Scenario{
			Net: net, Downlink: true, Uplink: true, Scheme: core.DOMINO,
			Seed: o.Seed, Duration: o.Duration, Warmup: o.Warmup,
			Traffic: core.UDPCBR, DownMbps: rate, UpMbps: rate,
			TuneDomino: func(c *domino.Config) { c.BatchSize = res.BatchSizes[i/2] },
		})
		return errCell[point]{v: point{r.DataMbps, r.MeanDelay.Microseconds()}, err: err}
	})
	if err := firstErr(points); err != nil {
		return res, err
	}
	for i := range res.BatchSizes {
		res.HeavyMbps = append(res.HeavyMbps, points[2*i].v.mbps)
		res.HeavyDelayUs = append(res.HeavyDelayUs, points[2*i].v.delayUs)
		res.LightMbps = append(res.LightMbps, points[2*i+1].v.mbps)
		res.LightDelayUs = append(res.LightDelayUs, points[2*i+1].v.delayUs)
	}
	return res, nil
}

// Print renders the polling-frequency sweep.
func (r PollingSweepResult) Print(w io.Writer) {
	fmt.Fprintln(w, "§5: batch size (1/polling frequency) sweep, T(10,2) UDP")
	hline(w, 66)
	fmt.Fprintf(w, "%-22s", "batch size")
	for _, b := range r.BatchSizes {
		fmt.Fprintf(w, "%9d", b)
	}
	fmt.Fprintln(w)
	rows := []struct {
		name string
		vals []float64
		prec int
	}{
		{"heavy tput (Mbps)", r.HeavyMbps, 2},
		{"heavy delay (µs)", r.HeavyDelayUs, 0},
		{"light tput (Mbps)", r.LightMbps, 2},
		{"light delay (µs)", r.LightDelayUs, 0},
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%-22s", row.name)
		for _, v := range row.vals {
			fmt.Fprintf(w, "%9.*f", row.prec, v)
		}
		fmt.Fprintln(w)
	}
}

// LightLoadResult: §5 light-traffic delay comparison on T(6,5).
type LightLoadResult struct {
	DominoDelay, DCFDelay sim.Time
	Ratio                 float64
	// AdaptiveDelay/AdaptiveRatio use the adaptive batch policy (the
	// "better polling scheme" the paper leaves as future work).
	AdaptiveDelay sim.Time
	AdaptiveRatio float64
}

// LightLoad measures DOMINO's control overhead at web-browsing-like rates
// (48 Kbps per link on T(6,5); paper: delay only 1.14× DCF's).
func LightLoad(o Options) (LightLoadResult, error) {
	o = o.withDefaults()
	// T(6,5) consumes 36 of the trace's 40 nodes, so clients must accept
	// weaker APs than the default association policy; scan seeds for a
	// feasible selection.
	const t65Floor = -76
	feasible := int64(-1)
	for probe := int64(0); probe <= 100; probe++ {
		tr := topo.CampusTrace(o.Seed + probe)
		rng := rand.New(rand.NewSource(o.Seed))
		if _, err := topo.BuildTWithFloor(tr, 6, 5, t65Floor, phy.DefaultConfig(), phy.Rate12, rng); err == nil {
			feasible = o.Seed + probe
			break
		}
	}
	if feasible < 0 {
		return LightLoadResult{}, fmt.Errorf("exp: no campus trace within 100 seeds of %d supports T(6,5)", o.Seed)
	}
	build := func() (*topo.Network, error) {
		tr := topo.CampusTrace(feasible)
		rng := rand.New(rand.NewSource(o.Seed))
		return topo.BuildTWithFloor(tr, 6, 5, t65Floor, phy.DefaultConfig(), phy.Rate12, rng)
	}
	const rate = 0.048 // 6 KBps
	scenarios := []core.Scenario{
		{Scheme: core.DOMINO},
		{Scheme: core.DOMINO, TuneDomino: func(c *domino.Config) { c.AdaptiveBatch = true }},
		{Scheme: core.DCF},
	}
	runs := parallel.Map(o.Workers, len(scenarios), func(i int) errCell[core.Result] {
		sc := scenarios[i]
		net, err := build()
		if err != nil {
			return errCell[core.Result]{err: err}
		}
		sc.Net = net
		sc.Downlink, sc.Uplink = true, true
		sc.Seed, sc.Duration, sc.Warmup = o.Seed, o.Duration, o.Warmup
		sc.Traffic, sc.DownMbps, sc.UpMbps = core.UDPCBR, rate, rate
		r, err := core.RunScenario(sc)
		return errCell[core.Result]{v: r, err: err}
	})
	if err := firstErr(runs); err != nil {
		return LightLoadResult{}, err
	}
	dom, adaptive, d := runs[0].v, runs[1].v, runs[2].v
	res := LightLoadResult{
		DominoDelay:   dom.MeanDelay,
		DCFDelay:      d.MeanDelay,
		AdaptiveDelay: adaptive.MeanDelay,
	}
	if d.MeanDelay > 0 {
		res.Ratio = float64(dom.MeanDelay) / float64(d.MeanDelay)
		res.AdaptiveRatio = float64(adaptive.MeanDelay) / float64(d.MeanDelay)
	}
	return res, nil
}

// Print renders the light-load comparison.
func (r LightLoadResult) Print(w io.Writer) {
	fmt.Fprintln(w, "§5: light traffic (T(6,5), 6 KBps per link)")
	hline(w, 48)
	fmt.Fprintf(w, "DOMINO delay: %v\nDCF delay:    %v\nratio:        %.2fx (paper: 1.14x)\n",
		r.DominoDelay, r.DCFDelay, r.Ratio)
	fmt.Fprintf(w, "with adaptive batching: %v (%.2fx)\n", r.AdaptiveDelay, r.AdaptiveRatio)
}
