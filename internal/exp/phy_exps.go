package exp

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/gold"
	"repro/internal/ofdm"
	"repro/internal/parallel"
)

// Table1 prints the ROP control-symbol parameters next to regular WiFi, as
// paper Table 1; the values are asserted against ofdm.DefaultLayout.
func Table1(w io.Writer) {
	l := ofdm.DefaultLayout()
	fmt.Fprintln(w, "Table 1: OFDM symbol parameters (WiFi vs ROP)")
	hline(w, 52)
	fmt.Fprintf(w, "%-28s %8s %8s\n", "parameter", "WiFi", "ROP")
	fmt.Fprintf(w, "%-28s %8d %8d\n", "number of subcarriers", 64, l.N)
	fmt.Fprintf(w, "%-28s %8s %8d\n", "subcarriers per subchannel", "-", l.PerSub)
	fmt.Fprintf(w, "%-28s %8s %8d\n", "guard subcarriers", "-", l.Guard)
	fmt.Fprintf(w, "%-28s %8s %8d\n", "number of subchannels", "-", l.NumSubchannels())
	fmt.Fprintf(w, "%-28s %7.1fµs %6.1fµs\n", "CP duration", 0.8, float64(l.CPLen)/ofdm.SampleRate*1e6)
	fmt.Fprintf(w, "%-28s %7.0fµs %6.0fµs\n", "symbol duration", 4.0, l.SymbolDurationUs())
}

// Fig5Result carries the decoded spectra of the three Fig 5 sub-figures.
type Fig5Result struct {
	// EqualNoGuard: two adjacent subchannels, similar RSS, no guard (5a).
	EqualNoGuard ofdm.PollResult
	// StrongNoGuard: 30 dB difference, no guard (5b).
	StrongNoGuard ofdm.PollResult
	// StrongGuarded: 30 dB difference, 3 guard subcarriers (5c).
	StrongGuarded ofdm.PollResult
	// Bins lists the FFT bins of the two subchannels per variant, in the
	// same order, for plotting.
	BinsNoGuard, BinsGuarded [][]int
}

// Fig5 reproduces the three received-spectrum snapshots of paper Fig 5. The
// strong client is poorly tuned (1.2 kHz residual CFO) as in the USRP
// measurement.
func Fig5(seed int64) Fig5Result {
	rng := rand.New(rand.NewSource(seed))
	var res Fig5Result
	noGuard := ofdm.DefaultLayout()
	noGuard.Guard = 0
	guarded := ofdm.DefaultLayout()

	clients := func(diff float64, cfo float64) []ofdm.Client {
		return []ofdm.Client{
			{Subchannel: 0, GainDB: diff, CFOHz: cfo},
			{Subchannel: 1, GainDB: 0, CFOHz: -cfo / 3},
		}
	}
	res.EqualNoGuard = ofdm.Poll(noGuard, clients(0, 900), []int{0b111111, 0b011111}, 1e-3, rng)
	res.StrongNoGuard = ofdm.Poll(noGuard, clients(30, 1200), []int{0b111111, 0b111111}, 1e-3, rng)
	res.StrongGuarded = ofdm.Poll(guarded, clients(30, 1200), []int{0b111111, 0b111111}, 1e-3, rng)
	res.BinsNoGuard = [][]int{noGuard.SubcarrierIndices(0), noGuard.SubcarrierIndices(1)}
	res.BinsGuarded = [][]int{guarded.SubcarrierIndices(0), guarded.SubcarrierIndices(1)}
	return res
}

// Print renders the three spectra around the two subchannels.
func (r Fig5Result) Print(w io.Writer) {
	show := func(name string, pr ofdm.PollResult, bins [][]int) {
		fmt.Fprintf(w, "Fig 5 %s: decode ok = %v\n", name, pr.OK)
		lo, hi := bins[0][0], bins[1][len(bins[1])-1]+2
		fmt.Fprintf(w, "  bin: ")
		for b := lo; b <= hi; b++ {
			fmt.Fprintf(w, "%7d", b)
		}
		fmt.Fprintf(w, "\n  |Y| : ")
		for b := lo; b <= hi; b++ {
			fmt.Fprintf(w, "%7.3f", pr.Spectrum[b])
		}
		fmt.Fprintln(w)
	}
	show("(a) equal RSS, no guard", r.EqualNoGuard, r.BinsNoGuard)
	show("(b) 30 dB diff, no guard", r.StrongNoGuard, r.BinsNoGuard)
	show("(c) 30 dB diff, 3 guards", r.StrongGuarded, r.BinsGuarded)
}

// Fig6Result maps guard-subcarrier count to (RSS difference, decode ratio)
// series.
type Fig6Result struct {
	DiffsDB []float64
	// Ratio[g][i] is the decode ratio with g guard subcarriers at
	// DiffsDB[i].
	Ratio map[int][]float64
}

// Fig6 sweeps the guard-subcarrier count against the RSS difference
// between adjacent subchannels (paper Fig 6).
func Fig6(o Options) Fig6Result {
	o = o.withDefaults()
	res := Fig6Result{
		DiffsDB: []float64{15, 20, 25, 30, 34, 38, 40, 44},
		Ratio:   map[int][]float64{},
	}
	// One task per (guard count, RSS diff) grid point, each with its own
	// seed derived from the grid index.
	const guards = 5
	nd := len(res.DiffsDB)
	ratios := parallel.Map(o.Workers, guards*nd, func(i int) float64 {
		l := ofdm.DefaultLayout()
		l.Guard = i / nd
		rng := rand.New(rand.NewSource(pointSeed(o, i)))
		return ofdm.DecodeRatio(l, res.DiffsDB[i%nd], ofdm.DefaultCFOMaxHz, 1e-3, o.Trials, rng)
	})
	for g := 0; g < guards; g++ {
		res.Ratio[g] = ratios[g*nd : (g+1)*nd]
	}
	return res
}

// Print renders the Fig 6 curves as a table.
func (r Fig6Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 6: correct decoding ratio (%) vs RSS difference, per guard count")
	hline(w, 64)
	fmt.Fprintf(w, "%-10s", "diff (dB)")
	for _, d := range r.DiffsDB {
		fmt.Fprintf(w, "%7.0f", d)
	}
	fmt.Fprintln(w)
	for g := 0; g <= 4; g++ {
		fmt.Fprintf(w, "guards=%-3d", g)
		for _, v := range r.Ratio[g] {
			fmt.Fprintf(w, "%7.0f", v*100)
		}
		fmt.Fprintln(w)
	}
}

// SNRFloorResult is the §3.1 SNR experiment.
type SNRFloorResult struct {
	SNRdB []float64
	Ratio []float64
}

// SNRFloor measures single-client decode reliability against wideband SNR.
func SNRFloor(o Options) SNRFloorResult {
	o = o.withDefaults()
	res := SNRFloorResult{SNRdB: []float64{-16, -12, -8, -6, -4, 0, 4, 8}}
	res.Ratio = parallel.Map(o.Workers, len(res.SNRdB), func(i int) float64 {
		rng := rand.New(rand.NewSource(pointSeed(o, i)))
		return ofdm.SNRFloor(ofdm.DefaultLayout(), res.SNRdB[i], o.Trials, rng)
	})
	return res
}

// Print renders the SNR floor sweep.
func (r SNRFloorResult) Print(w io.Writer) {
	fmt.Fprintln(w, "§3.1: ROP symbol decode ratio vs wideband SNR (reliable ≥ 4 dB)")
	hline(w, 60)
	fmt.Fprintf(w, "%-10s", "SNR (dB)")
	for _, s := range r.SNRdB {
		fmt.Fprintf(w, "%7.0f", s)
	}
	fmt.Fprintf(w, "\n%-10s", "ratio (%)")
	for _, v := range r.Ratio {
		fmt.Fprintf(w, "%7.0f", v*100)
	}
	fmt.Fprintln(w)
}

// Fig9Result holds detection-ratio curves per sender setup.
type Fig9Result struct {
	Combined []int
	// Detected[i][j]: setup i, Combined[j].
	Setups   []gold.Setup
	Detected [][]float64
	// MaxFP is the worst false-positive ratio within DOMINO's operating
	// envelope (inbound ≤ 2 redundant senders × ≤ 4 combined signatures =
	// at most 8 concurrent signature instances); MaxFPAll covers every
	// measured point, including the 3-sender/7-combined extremes beyond
	// what the converter ever produces.
	MaxFP    float64
	MaxFPAll float64
}

// Fig9 reproduces the signature-detection experiment: five transmitter
// setups, combined signature counts 1..7, 1000 chip-level trials per point
// in the paper.
func Fig9(o Options) (Fig9Result, error) {
	o = o.withDefaults()
	set, err := gold.NewSet(7)
	if err != nil {
		return Fig9Result{}, fmt.Errorf("exp: Fig9 gold set: %w", err)
	}
	res := Fig9Result{Combined: []int{1, 2, 3, 4, 5, 6, 7}, Setups: gold.Fig9Setups()}
	// One task per (setup, combined) grid point, seeded by grid index; n/a
	// points (fewer signatures than senders) stay at -1. The false-positive
	// maxima are reduced serially from the ordered grid below.
	nc := len(res.Combined)
	points := parallel.Map(o.Workers, len(res.Setups)*nc, func(i int) gold.DetectionResult {
		setup := res.Setups[i/nc]
		c := res.Combined[i%nc]
		if c < setup.Senders && setup.Mode == gold.DifferentSignatures {
			return gold.DetectionResult{Detected: -1}
		}
		return gold.DetectionTrialParallel(set, setup, c, o.Trials, 10, pointSeed(o, i), 1)
	})
	for si, setup := range res.Setups {
		row := make([]float64, 0, nc)
		for ci, c := range res.Combined {
			r := points[si*nc+ci]
			row = append(row, r.Detected)
			if r.Detected < 0 {
				continue
			}
			instances := c
			if setup.Mode == gold.SameSignatures {
				instances = c * setup.Senders
			}
			if instances <= 8 && r.FalsePositive > res.MaxFP {
				res.MaxFP = r.FalsePositive
			}
			if r.FalsePositive > res.MaxFPAll {
				res.MaxFPAll = r.FalsePositive
			}
		}
		res.Detected = append(res.Detected, row)
	}
	return res, nil
}

// Print renders the Fig 9 table.
func (r Fig9Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig 9: signature detection ratio (%) vs combined signatures")
	hline(w, 76)
	fmt.Fprintf(w, "%-28s", "setup")
	for _, c := range r.Combined {
		fmt.Fprintf(w, "%6d", c)
	}
	fmt.Fprintln(w)
	names := []string{
		"1 sender",
		"2 senders, same sigs",
		"2 senders, diff sigs",
		"3 senders, same sigs",
		"3 senders, diff sigs",
	}
	for i, row := range r.Detected {
		fmt.Fprintf(w, "%-28s", names[i])
		for _, v := range row {
			if v < 0 {
				fmt.Fprintf(w, "%6s", "-")
			} else {
				fmt.Fprintf(w, "%6.0f", v*100)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "max false-positive ratio (operating envelope): %.2f%% (paper: below 1%%)\n", r.MaxFP*100)
	fmt.Fprintf(w, "max false-positive ratio (all setups): %.2f%%\n", r.MaxFPAll*100)
}
