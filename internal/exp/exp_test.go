package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// small returns options that keep experiment tests fast while preserving the
// qualitative shapes.
func small() Options {
	return Options{Seed: 1, Duration: 2 * sim.Second, Warmup: 300 * sim.Millisecond, Runs: 3, Trials: 60}
}

func TestT10x2(t *testing.T) {
	net := must(T10x2(7))
	if len(net.APs) != 10 || net.NumNodes() != 30 {
		t.Fatalf("T(10,2): %d APs %d nodes", len(net.APs), net.NumNodes())
	}
}

func TestTable1Prints(t *testing.T) {
	var b bytes.Buffer
	Table1(&b)
	out := b.String()
	for _, want := range []string{"256", "24", "3.2", "16"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	r := Fig2(small())
	// The paper's claims: omniscient ≈ 1.8× DCF; DOMINO close to
	// omniscient; DCF starves AP3→C3.
	dcf := r.Overall[core.DCF]
	dom := r.Overall[core.DOMINO]
	omni := r.Overall[core.Omniscient]
	if dom <= dcf*1.3 {
		t.Errorf("DOMINO %.2f should clearly beat DCF %.2f", dom, dcf)
	}
	if dom < omni*0.8 {
		t.Errorf("DOMINO %.2f should approach omniscient %.2f", dom, omni)
	}
	if ap3 := r.PerLink[core.DCF][2]; ap3 > r.PerLink[core.DCF][0]/3 {
		t.Errorf("DCF should starve AP3→C3 (got %.2f)", ap3)
	}
	var b bytes.Buffer
	r.Print(&b)
	if !strings.Contains(b.String(), "DOMINO") {
		t.Error("print output malformed")
	}
}

func TestFig5Shapes(t *testing.T) {
	r := Fig5(1)
	if !r.EqualNoGuard.OK[0] || !r.EqualNoGuard.OK[1] {
		t.Error("5a: equal-RSS clients must decode")
	}
	if r.StrongNoGuard.OK[1] {
		t.Error("5b: weak client should be corrupted without guards")
	}
	if !r.StrongGuarded.OK[1] {
		t.Error("5c: weak client must decode with 3 guards")
	}
	var b bytes.Buffer
	r.Print(&b)
	if !strings.Contains(b.String(), "Fig 5") {
		t.Error("print output malformed")
	}
}

func TestFig6Shape(t *testing.T) {
	r := Fig6(small())
	// 3 guards at 38 dB hold; 0 guards at 38 dB fail.
	idx38 := -1
	for i, d := range r.DiffsDB {
		if d == 38 {
			idx38 = i
		}
	}
	if r.Ratio[3][idx38] < 0.85 {
		t.Errorf("3 guards at 38 dB = %.2f", r.Ratio[3][idx38])
	}
	if r.Ratio[0][idx38] > r.Ratio[3][idx38]-0.2 {
		t.Errorf("guards not helping: g0=%.2f g3=%.2f", r.Ratio[0][idx38], r.Ratio[3][idx38])
	}
	var b bytes.Buffer
	r.Print(&b)
	if !strings.Contains(b.String(), "guards=3") {
		t.Error("print output malformed")
	}
}

func TestSNRFloorShape(t *testing.T) {
	r := SNRFloor(small())
	last := r.Ratio[len(r.Ratio)-1] // 8 dB
	first := r.Ratio[0]             // -16 dB
	if last < 0.95 || first > 0.5 {
		t.Errorf("SNR floor shape wrong: %.2f at %v dB, %.2f at %v dB",
			first, r.SNRdB[0], last, r.SNRdB[len(r.SNRdB)-1])
	}
}

func TestFig9Shape(t *testing.T) {
	r := must(Fig9(small()))
	for i, row := range r.Detected {
		for j, v := range row {
			if v < 0 {
				continue
			}
			if r.Combined[j] <= 4 && v < 0.95 {
				t.Errorf("setup %d combined %d: detection %.2f", i, r.Combined[j], v)
			}
		}
	}
	if r.MaxFP > 0.02 {
		t.Errorf("false positives %.3f", r.MaxFP)
	}
}

func TestTable2Shape(t *testing.T) {
	o := small()
	o.Duration = sim.Second // ×10 internally
	r := Table2(o)
	for i, sc := range r.Scenarios {
		if r.Domino[i] <= r.DCF[i] {
			t.Errorf("%v: DOMINO %.4f should beat DCF %.4f", sc, r.Domino[i], r.DCF[i])
		}
	}
	// Hidden and exposed placements show the largest gains (paper: >3×).
	htGain := r.Domino[1] / r.DCF[1]
	etGain := r.Domino[2] / r.DCF[2]
	scGain := r.Domino[0] / r.DCF[0]
	if htGain < scGain || etGain < scGain {
		t.Errorf("gains: SC=%.2f HT=%.2f ET=%.2f; HT/ET should exceed SC", scGain, htGain, etGain)
	}
}

func TestTable3Shape(t *testing.T) {
	r := Table3(small())
	domA, cenA, dcfA := r.Mbps[0][0], r.Mbps[0][1], r.Mbps[0][2]
	domB, cenB, dcfB := r.Mbps[1][0], r.Mbps[1][1], r.Mbps[1][2]
	// 13(a): both centralized schemes well above DCF.
	if domA < dcfA*1.5 || cenA < dcfA*1.5 {
		t.Errorf("13a: DOMINO %.1f CENTAUR %.1f DCF %.1f", domA, cenA, dcfA)
	}
	// 13(b): CENTAUR collapses below DCF; DOMINO holds.
	if cenB >= dcfB {
		t.Errorf("13b: CENTAUR %.1f should fall below DCF %.1f", cenB, dcfB)
	}
	if domB < domA*0.85 {
		t.Errorf("13b: DOMINO %.1f should stay near its 13a value %.1f", domB, domA)
	}
}

func TestFig11Shape(t *testing.T) {
	o := small()
	o.Duration = sim.Second
	r := must(Fig11(o))
	for i, std := range r.StdsUs {
		first := r.MaxUs[i][0]
		settled := r.MaxUs[i][len(r.MaxUs[i])-1]
		if first == 0 {
			t.Errorf("σ=%v: no initial misalignment", std)
		}
		if settled > first && settled > 5 {
			t.Errorf("σ=%v: misalignment grew: %v -> %v", std, first, settled)
		}
	}
}

func TestFig10Timeline(t *testing.T) {
	o := small()
	o.Duration = 200 * sim.Millisecond
	events := Fig10(o, 50)
	if len(events) != 50 {
		t.Fatalf("events = %d", len(events))
	}
	kinds := map[string]bool{}
	for _, ev := range events {
		kinds[ev.Kind] = true
	}
	for _, want := range []string{"data", "bcast", "trigger"} {
		if !kinds[want] {
			t.Errorf("timeline missing %q events", want)
		}
	}
	var b bytes.Buffer
	PrintFig10(&b, events)
	if !strings.Contains(b.String(), "slot") {
		t.Error("print output malformed")
	}
}

func TestFig12UDPShape(t *testing.T) {
	o := small()
	r := must(Fig12(o, core.UDPCBR))
	// DOMINO must beat DCF at zero uplink (paper: +74%) and stay ahead.
	domino0, dcf0 := r.ThroughputMbps[0][0], r.ThroughputMbps[2][0]
	if domino0 <= dcf0*1.2 {
		t.Errorf("uplink 0: DOMINO %.2f vs DCF %.2f, want ≥1.2x", domino0, dcf0)
	}
	last := len(r.UpMbps) - 1
	dominoF, dcfF := r.Fairness[0][last], r.Fairness[2][last]
	if dominoF <= dcfF {
		t.Errorf("fairness at full uplink: DOMINO %.2f vs DCF %.2f", dominoF, dcfF)
	}
	var b bytes.Buffer
	r.Print(&b)
	if !strings.Contains(b.String(), "fairness") {
		t.Error("print output malformed")
	}
}

func TestFig14Shape(t *testing.T) {
	o := small()
	o.Duration = 1500 * sim.Millisecond
	r := must(Fig14(o))
	if r.Gains.N() == 0 {
		t.Fatal("no feasible random topologies")
	}
	if med := r.Gains.Quantile(0.5); med < 1.1 {
		t.Errorf("median gain %.2fx, want >1.1 (paper: 1.58)", med)
	}
	var b bytes.Buffer
	r.Print(&b)
	if !strings.Contains(b.String(), "gain") {
		t.Error("print output malformed")
	}
}

// TestFig14Deterministic asserts the parallel-harness contract end to end:
// the gains CDF and skip count are identical at workers=1 and workers=8 for
// the same seed, because every placement derives its seed from its run
// index and the CDF shards merge in run order.
func TestFig14Deterministic(t *testing.T) {
	o := Options{Seed: 5, Duration: 400 * sim.Millisecond, Warmup: 100 * sim.Millisecond, Runs: 4}
	o.Workers = 1
	serial := must(Fig14(o))
	o.Workers = 8
	par := must(Fig14(o))
	if serial.Skipped != par.Skipped {
		t.Fatalf("skipped: workers=1 %d, workers=8 %d", serial.Skipped, par.Skipped)
	}
	if serial.Gains.N() != par.Gains.N() {
		t.Fatalf("N: workers=1 %d, workers=8 %d", serial.Gains.N(), par.Gains.N())
	}
	sx, _ := serial.Gains.Points()
	px, _ := par.Gains.Points()
	for i := range sx {
		if sx[i] != px[i] {
			t.Errorf("gain %d: workers=1 %v, workers=8 %v", i, sx[i], px[i])
		}
	}
}

func TestLightLoadShape(t *testing.T) {
	o := small()
	r := must(LightLoad(o))
	if r.Ratio <= 0 {
		t.Fatal("no delay measured")
	}
	// DOMINO's control overhead costs some delay at light load, but within
	// the same order of magnitude (paper: 1.14×).
	if r.Ratio > 30 {
		t.Errorf("light-load delay ratio %.1fx is out of hand", r.Ratio)
	}
}

func TestPollingSweepShape(t *testing.T) {
	o := small()
	o.Duration = 1500 * sim.Millisecond
	r := must(PollingSweep(o))
	if len(r.HeavyMbps) != len(r.BatchSizes) {
		t.Fatal("row shape wrong")
	}
	// Light-traffic delay grows with batch size (paper §5).
	first, lastV := r.LightDelayUs[0], r.LightDelayUs[len(r.LightDelayUs)-1]
	if lastV < first {
		t.Logf("light delay: %v", r.LightDelayUs) // tendency, not strict
	}
}
