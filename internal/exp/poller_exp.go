package exp

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/domino"
	"repro/internal/parallel"
	"repro/internal/phy"
	"repro/internal/poll"
	"repro/internal/topo"
)

// PollerSweepPoint is one (poller, client count) cell of the sweep.
type PollerSweepPoint struct {
	Poller  string
	Clients int
	// DecodeRatio is decoded reports over all judged reports across the run's
	// polling cycles (1.0 = every polled client reported every cycle).
	DecodeRatio float64
	// OverheadPct approximates the air time polling consumed: poll rounds ×
	// the nominal ROP slot over the run duration, in percent.
	OverheadPct float64
	// Unpolled is how many clients the poller's layout could not fit
	// (Engine.UnpolledClients; nonzero only for bounded pollers like ROP).
	Unpolled int
	// Collisions counts random-access losses (UORA; zero for scheduled
	// pollers).
	Collisions     int
	ThroughputMbps float64
}

// PollerSweepResult compares every registered polling scheme (internal/poll
// registry) as the per-AP client count grows past ROP's 24-subchannel
// ceiling: the paper's single-symbol ROP truncates, A2P spends extra rounds,
// UORA spends collisions.
type PollerSweepResult struct {
	Pollers []string
	Counts  []int
	// Points is row-major: Points[p*len(Counts)+c] is Pollers[p] at Counts[c].
	Points []PollerSweepPoint
}

// PollerSweepCounts is the default per-AP client-count axis: brackets below,
// at, and well past the 24-subchannel ROP ceiling.
var PollerSweepCounts = []int{6, 12, 24, 48, 96}

// PollerSweep runs a saturated single-AP star once per registered poller and
// client count, selected purely by name through domino.Config.Poller — the
// same path a spec file's scheme_config.poller takes.
func PollerSweep(o Options) (PollerSweepResult, error) {
	o = o.withDefaults()
	res := PollerSweepResult{Pollers: poll.Names(), Counts: PollerSweepCounts}
	type cell struct {
		poller string
		n      int
	}
	var cells []cell
	for _, p := range res.Pollers {
		for _, n := range res.Counts {
			cells = append(cells, cell{p, n})
		}
	}
	runs := parallel.Map(o.Workers, len(cells), func(i int) errCell[PollerSweepPoint] {
		c := cells[i]
		net := topo.GridCampus(o.Seed, 1, 1, c.n)
		r, err := core.RunScenario(core.Scenario{
			Net: net, Downlink: true, Uplink: true, Scheme: core.DOMINO,
			Seed: o.Seed, Duration: o.Duration, Warmup: o.Warmup,
			Traffic:    core.Saturated,
			TuneDomino: func(cfg *domino.Config) { cfg.Poller = c.poller },
		})
		if err != nil {
			return errCell[PollerSweepPoint]{err: err}
		}
		pt := PollerSweepPoint{Poller: c.poller, Clients: c.n, ThroughputMbps: r.AggregateMbps}
		if e := r.Domino; e != nil {
			if judged := e.PollDecoded + e.PollFailed; judged > 0 {
				pt.DecodeRatio = float64(e.PollDecoded) / float64(judged)
			}
			pt.OverheadPct = 100 * float64(e.PollRounds) * float64(phy.ROPSlotDuration) / float64(o.Duration)
			pt.Unpolled = len(e.UnpolledClients)
			pt.Collisions = e.PollCollisions
		}
		return errCell[PollerSweepPoint]{v: pt}
	})
	if err := firstErr(runs); err != nil {
		return res, err
	}
	for _, run := range runs {
		res.Points = append(res.Points, run.v)
	}
	return res, nil
}

// Print renders the per-poller scaling comparison.
func (r PollerSweepResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Poller sweep: DOMINO under each registered polling scheme, single-AP star, saturated")
	hline(w, 86)
	fmt.Fprintf(w, "%-8s %8s %12s %12s %10s %11s %12s\n",
		"poller", "clients", "decode", "overhead %", "unpolled", "collisions", "tput (Mbps)")
	for _, pt := range r.Points {
		fmt.Fprintf(w, "%-8s %8d %12.3f %12.3f %10d %11d %12.2f\n",
			pt.Poller, pt.Clients, pt.DecodeRatio, pt.OverheadPct,
			pt.Unpolled, pt.Collisions, pt.ThroughputMbps)
	}
}

// CSV writes one row per (poller, client count) point.
func (r PollerSweepResult) CSV(w io.Writer) error {
	rows := make([][]string, len(r.Points))
	for i, pt := range r.Points {
		rows[i] = []string{
			pt.Poller,
			fmt.Sprintf("%d", pt.Clients),
			fmt.Sprintf("%.4f", pt.DecodeRatio),
			fmt.Sprintf("%.4f", pt.OverheadPct),
			fmt.Sprintf("%d", pt.Unpolled),
			fmt.Sprintf("%d", pt.Collisions),
			fmt.Sprintf("%.4f", pt.ThroughputMbps),
		}
	}
	return writeCSV(w, []string{"poller", "clients", "decode_ratio", "overhead_pct",
		"unpolled", "collisions", "throughput_mbps"}, rows)
}
