// Package exp contains one driver per table and figure of the paper's
// evaluation, each returning structured results and able to print the same
// rows/series the paper reports. The cmd/experiments binary and the
// repository's benchmarks are thin wrappers around these drivers.
package exp

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/domino"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Options scales an experiment: the full paper settings are slow (50 s runs,
// 50 repetitions); tests and benchmarks shrink them.
type Options struct {
	Seed     int64
	Duration sim.Time
	Warmup   sim.Time
	// Runs is the repetition count for Monte-Carlo experiments (Fig 14).
	Runs int
	// Trials is the per-point trial count for PHY Monte Carlos (Figs 6, 9).
	Trials int
	// Workers bounds the worker pool the drivers fan independent runs and
	// sweep points across; ≤ 0 means all cores. Every driver derives
	// per-task seeds and collects results in task order, so the numbers are
	// identical at any Workers value (see internal/parallel).
	Workers int
	// TraceSink, when non-nil, receives the NDJSON observability trace of
	// the drivers that support it (Fig2, Fig14). Each simulation run writes
	// into its own obs.Sharded shard and the shards are concatenated in run
	// order, so the stream is byte-identical at any Workers value.
	TraceSink io.Writer
	// TuneDomino, when non-nil, adjusts the engine config of every DOMINO
	// run launched by the drivers that honor it (Fig14). Used by the
	// differential cache goldens and cmd/benchreport to flip conversion
	// knobs without changing the workload.
	TuneDomino func(*domino.Config)
}

// Paper returns the evaluation-scale options (50 s runs as in §4.2.1).
func Paper() Options {
	return Options{Seed: 1, Duration: 50 * sim.Second, Warmup: sim.Second, Runs: 50, Trials: 1000}
}

// Quick returns options sized for interactive runs and tests.
func Quick() Options {
	return Options{Seed: 1, Duration: 4 * sim.Second, Warmup: 500 * sim.Millisecond, Runs: 8, Trials: 150}
}

func (o Options) withDefaults() Options {
	if o.Duration == 0 {
		o.Duration = 4 * sim.Second
	}
	if o.Runs == 0 {
		o.Runs = 8
	}
	if o.Trials == 0 {
		o.Trials = 150
	}
	return o
}

// T10x2 builds the paper's default simulation topology: T(10, 2) selected
// from the 40-node two-building campus trace (§4.2.1).
func T10x2(seed int64) (*topo.Network, error) {
	tr := topo.CampusTrace(seed)
	rng := rand.New(rand.NewSource(seed))
	net, err := topo.BuildT(tr, 10, 2, phy.DefaultConfig(), phy.Rate12, rng)
	if err != nil {
		return nil, fmt.Errorf("exp: T(10,2) infeasible on campus trace seed %d: %w", seed, err)
	}
	return net, nil
}

// hline prints a separator sized to the header.
func hline(w io.Writer, n int) {
	fmt.Fprintln(w, strings.Repeat("-", n))
}

// pointSeedStride spaces the base seeds of independent sweep points far
// enough apart that seeds derived within a point (shards at stride 101)
// never collide across points.
const pointSeedStride int64 = 1_000_003

// pointSeed derives the RNG seed of sweep point idx of an experiment.
func pointSeed(o Options, idx int) int64 {
	return parallel.Seed(o.Seed, idx, pointSeedStride)
}

// shardTracer returns shard i of s, or a nil tracer when tracing is off.
func shardTracer(s *obs.Sharded, i int) obs.Tracer {
	if s == nil {
		return nil
	}
	return s.Shard(i)
}

// runScheme is the shared single-run helper.
func runScheme(net *topo.Network, scheme core.Scheme, o Options, mut func(*core.Scenario)) core.Result {
	sc := core.Scenario{
		Net:      net,
		Downlink: true,
		Uplink:   true,
		Scheme:   scheme,
		Seed:     o.Seed,
		Duration: o.Duration,
		Warmup:   o.Warmup,
		Traffic:  core.Saturated,
	}
	if mut != nil {
		mut(&sc)
	}
	return core.Run(sc)
}

// errCell pairs a parallel task's result with its error so driver fan-outs
// can propagate failures instead of panicking inside the worker pool.
type errCell[T any] struct {
	v   T
	err error
}

// firstErr returns the first non-nil error in task order.
func firstErr[T any](cells []errCell[T]) error {
	for _, c := range cells {
		if c.err != nil {
			return c.err
		}
	}
	return nil
}
