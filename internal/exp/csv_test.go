package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// must unwraps an error-returning driver; the tiny test configurations are
// always feasible, so a failure is a bug worth aborting on.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

func TestCSVWriters(t *testing.T) {
	o := small()
	o.Trials = 30
	o.Duration = sim.Second

	var b bytes.Buffer
	if err := Fig6(o).CSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "guards,rss_diff_db,decode_ratio\n") {
		t.Errorf("fig6 header wrong: %q", strings.SplitN(b.String(), "\n", 2)[0])
	}
	if lines := strings.Count(b.String(), "\n"); lines != 1+5*8 {
		t.Errorf("fig6 rows = %d", lines)
	}

	b.Reset()
	if err := must(Fig9(o)).CSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "setup,combined,detection_ratio") {
		t.Error("fig9 header missing")
	}

	b.Reset()
	if err := must(Fig11(o)).CSV(&b); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(b.String(), "\n"); lines != 1+4*6 {
		t.Errorf("fig11 rows = %d", lines)
	}

	b.Reset()
	r12 := must(Fig12(Options{Seed: 1, Duration: sim.Second, Warmup: 200 * sim.Millisecond}, core.UDPCBR))
	if err := r12.CSV(&b); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(b.String(), "\n"); lines != 1+3*6 {
		t.Errorf("fig12 rows = %d", lines)
	}
	if !strings.Contains(b.String(), "DOMINO") {
		t.Error("fig12 missing scheme names")
	}

	b.Reset()
	o14 := small()
	o14.Runs = 2
	o14.Duration = sim.Second
	if err := must(Fig14(o14)).CSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "gain,cdf\n") {
		t.Error("fig14 header wrong")
	}

	b.Reset()
	oc := small()
	oc.Duration = sim.Second
	if err := Coexist(oc).CSV(&b); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(b.String(), "\n"); lines != 1+4 {
		t.Errorf("coexist rows = %d", lines)
	}
}
