package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV renders experiment results as machine-readable series for external
// plotting. Each writer emits rows of (series, x, y).

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// CSV writes the Fig 6 sweep as (guards, rss_diff_db, decode_ratio).
func (r Fig6Result) CSV(w io.Writer) error {
	var rows [][]string
	for g := 0; g <= 4; g++ {
		for i, d := range r.DiffsDB {
			rows = append(rows, []string{strconv.Itoa(g), f(d), f(r.Ratio[g][i])})
		}
	}
	return writeCSV(w, []string{"guards", "rss_diff_db", "decode_ratio"}, rows)
}

// CSV writes the Fig 9 curves as (setup, combined, detection_ratio).
func (r Fig9Result) CSV(w io.Writer) error {
	var rows [][]string
	for i, row := range r.Detected {
		setup := fmt.Sprintf("%ds-%d", r.Setups[i].Senders, int(r.Setups[i].Mode))
		for j, v := range row {
			if v < 0 {
				continue
			}
			rows = append(rows, []string{setup, strconv.Itoa(r.Combined[j]), f(v)})
		}
	}
	return writeCSV(w, []string{"setup", "combined", "detection_ratio"}, rows)
}

// CSV writes the Fig 11 series as (jitter_std_us, slot, misalign_us).
func (r Fig11Result) CSV(w io.Writer) error {
	var rows [][]string
	for i, std := range r.StdsUs {
		for j, slot := range r.Slots {
			rows = append(rows, []string{f(std), strconv.Itoa(slot), f(r.MaxUs[i][j])})
		}
	}
	return writeCSV(w, []string{"jitter_std_us", "slot", "misalign_us"}, rows)
}

// CSV writes one Fig 12 panel set as
// (scheme, uplink_mbps, throughput_mbps, delay_us, fairness).
func (r Fig12Result) CSV(w io.Writer) error {
	var rows [][]string
	for i, s := range r.Schemes {
		for j, up := range r.UpMbps {
			rows = append(rows, []string{
				s.String(), f(up),
				f(r.ThroughputMbps[i][j]), f(r.DelayUs[i][j]), f(r.Fairness[i][j]),
			})
		}
	}
	return writeCSV(w, []string{"scheme", "uplink_mbps", "throughput_mbps", "delay_us", "fairness"}, rows)
}

// CSV writes the gain CDF as (gain, cdf).
func (r Fig14Result) CSV(w io.Writer) error {
	xs, fs := r.Gains.Points()
	var rows [][]string
	for i := range xs {
		rows = append(rows, []string{f(xs[i]), f(fs[i])})
	}
	return writeCSV(w, []string{"gain", "cdf"}, rows)
}

// CSV writes the coexistence sweep as (cop_ms, domino_mbps, external_mbps).
func (r CoexistResult) CSV(w io.Writer) error {
	var rows [][]string
	for i, c := range r.CoPMs {
		rows = append(rows, []string{f(c), f(r.DominoMbps[i]), f(r.ExternalMbps[i])})
	}
	return writeCSV(w, []string{"cop_ms", "domino_mbps", "external_mbps"}, rows)
}
