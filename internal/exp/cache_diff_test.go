package exp

// Differential goldens for the schedule-conversion fast paths: the engine
// caches converted batches and reuses incremental memos by default, and both
// layers must be bit-identical to a fresh full conversion. These tests re-run
// the DOMINO goldens from spec_diff_test.go across all four mode
// combinations — {cache on/off} × {incremental on/off} — expecting the same
// SHA-256 trace hashes and aggregates, so every fast path pins to the
// pre-refactor bytes.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/domino"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/topo"
)

// convertModes is the {cache on/off} × {incremental on/off} matrix. The
// all-on combination is the engine default the base goldens already pin; it
// rides along here so one table proves all four.
var convertModes = []struct {
	name           string
	noCache, noInc bool
}{
	{"cache+incremental", false, false},
	{"cache-only", false, true},
	{"incremental-only", true, false},
	{"neither", true, true},
}

func TestDominoGoldenAcrossConvertModes(t *testing.T) {
	if testing.Short() {
		t.Skip("eight traced 300 ms runs")
	}
	g := singleRunGoldens[2] // DOMINO
	if g.scheme != "DOMINO" {
		t.Fatalf("golden table reordered: got %s at index 2", g.scheme)
	}

	for _, mode := range convertModes {
		mode := mode
		tune := func(c *domino.Config) {
			c.NoConvertCache = mode.noCache
			c.NoIncremental = mode.noInc
		}
		t.Run(mode.name, func(t *testing.T) {
			// Legacy path: programmatic Scenario with the typed tune hook.
			var buf bytes.Buffer
			nd := obs.NewNDJSON(&buf)
			res := core.Run(core.Scenario{
				Net:      topo.Figure7(),
				Downlink: true,
				Uplink:   true,
				Scheme:   core.DOMINO,
				Seed:     g.seed,
				Duration: 300 * sim.Millisecond,
				Traffic:  core.Saturated,
				Tracer:   nd,

				TuneDomino: tune,
			})
			if err := nd.Flush(); err != nil {
				t.Fatal(err)
			}
			if got := sha(buf.Bytes()); got != g.traceSHA {
				t.Errorf("legacy trace hash %s != golden %s", got, g.traceSHA)
			}
			if got := fmt.Sprintf("%.6f", res.AggregateMbps); got != g.aggregate {
				t.Errorf("legacy aggregate %s != golden %s", got, g.aggregate)
			}

			// Spec path: BuildScenario + RunScenario, tune hook applied like
			// the CLI -no-convert-cache / -no-incremental flags would be.
			sc, err := core.BuildScenario(spec.Spec{
				Scheme:   g.scheme,
				Topology: spec.Topology{Kind: "fig7"},
				Seed:     g.seed,
				Duration: spec.Duration(300 * sim.Millisecond),
			})
			if err != nil {
				t.Fatal(err)
			}
			sc.TuneDomino = tune
			var buf2 bytes.Buffer
			nd2 := obs.NewNDJSON(&buf2)
			sc.Tracer = nd2
			res2, err := core.RunScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			if err := nd2.Flush(); err != nil {
				t.Fatal(err)
			}
			if got := sha(buf2.Bytes()); got != g.traceSHA {
				t.Errorf("spec trace hash %s != golden %s", got, g.traceSHA)
			}
			if got := fmt.Sprintf("%.6f", res2.AggregateMbps); got != g.aggregate {
				t.Errorf("spec aggregate %s != golden %s", got, g.aggregate)
			}
		})
	}
}

// TestFig14GoldenAcrossConvertModes pins the experiment-harness output in
// every conversion mode: identical merged NDJSON trace and gain-CDF CSV as
// the all-on default (the goldens in TestFig14MatchesPreRefactorGolden).
func TestFig14GoldenAcrossConvertModes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run traced Fig 14 × 4 modes")
	}
	const (
		goldenTraceSHA = "b023fc31fb52f70519c90db5b9872f37e191c3f29a1c6c9d409056ddaba4f9c8"
		goldenCSVSHA   = "24b473bfabef37b040796678a1621ec2593e47c4942780c40424f3703bf3de72"
	)
	for _, mode := range convertModes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			var trace bytes.Buffer
			o := fig14TraceOpts(1)
			o.TraceSink = &trace
			o.TuneDomino = func(c *domino.Config) {
				c.NoConvertCache = mode.noCache
				c.NoIncremental = mode.noInc
			}
			r := must(Fig14(o))
			if got := sha(trace.Bytes()); got != goldenTraceSHA {
				t.Errorf("Fig 14 trace hash %s != golden %s (%d bytes)",
					got, goldenTraceSHA, trace.Len())
			}
			var csv bytes.Buffer
			if err := r.CSV(&csv); err != nil {
				t.Fatal(err)
			}
			if got := sha(csv.Bytes()); got != goldenCSVSHA {
				t.Errorf("Fig 14 CSV hash %s != golden %s", got, goldenCSVSHA)
			}
		})
	}
}
