package exp

// Differential goldens for the schedule-conversion cache: the engine caches
// converted batches by default, and replay must be bit-identical to a fresh
// conversion. These tests re-run the DOMINO goldens from spec_diff_test.go
// with the cache explicitly disabled — same SHA-256 trace hashes, same
// aggregates — so "caching on AND off" both pin to the pre-refactor bytes.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/domino"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/topo"
)

// noCache disables the conversion cache on a DOMINO scenario.
func noCache(c *domino.Config) { c.NoConvertCache = true }

func TestDominoGoldenWithCacheDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("two traced 300 ms runs")
	}
	g := singleRunGoldens[2] // DOMINO
	if g.scheme != "DOMINO" {
		t.Fatalf("golden table reordered: got %s at index 2", g.scheme)
	}

	// Legacy path: programmatic Scenario with the typed tune hook.
	var buf bytes.Buffer
	nd := obs.NewNDJSON(&buf)
	res := core.Run(core.Scenario{
		Net:      topo.Figure7(),
		Downlink: true,
		Uplink:   true,
		Scheme:   core.DOMINO,
		Seed:     g.seed,
		Duration: 300 * sim.Millisecond,
		Traffic:  core.Saturated,
		Tracer:   nd,

		TuneDomino: noCache,
	})
	if err := nd.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := sha(buf.Bytes()); got != g.traceSHA {
		t.Errorf("cache-off legacy trace hash %s != golden %s", got, g.traceSHA)
	}
	if got := fmt.Sprintf("%.6f", res.AggregateMbps); got != g.aggregate {
		t.Errorf("cache-off legacy aggregate %s != golden %s", got, g.aggregate)
	}

	// Spec path: BuildScenario + RunScenario, tune hook applied like a CLI
	// -no-convert-cache flag would be.
	sc, err := core.BuildScenario(spec.Spec{
		Scheme:   g.scheme,
		Topology: spec.Topology{Kind: "fig7"},
		Seed:     g.seed,
		Duration: spec.Duration(300 * sim.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	sc.TuneDomino = noCache
	var buf2 bytes.Buffer
	nd2 := obs.NewNDJSON(&buf2)
	sc.Tracer = nd2
	res2, err := core.RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := nd2.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := sha(buf2.Bytes()); got != g.traceSHA {
		t.Errorf("cache-off spec trace hash %s != golden %s", got, g.traceSHA)
	}
	if got := fmt.Sprintf("%.6f", res2.AggregateMbps); got != g.aggregate {
		t.Errorf("cache-off spec aggregate %s != golden %s", got, g.aggregate)
	}
}

// TestFig14GoldenWithCacheDisabled pins the experiment-harness output with
// the conversion cache off: identical merged NDJSON trace and gain-CDF CSV as
// the cached default (the goldens in TestFig14MatchesPreRefactorGolden).
func TestFig14GoldenWithCacheDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run traced Fig 14")
	}
	const (
		goldenTraceSHA = "86f75ad8eaf3653ca946b01a3d415d7fb7ff49a0934da9cd10c51c507741dd55"
		goldenCSVSHA   = "24b473bfabef37b040796678a1621ec2593e47c4942780c40424f3703bf3de72"
	)
	var trace bytes.Buffer
	o := fig14TraceOpts(1)
	o.TraceSink = &trace
	o.TuneDomino = noCache
	r := must(Fig14(o))
	if got := sha(trace.Bytes()); got != goldenTraceSHA {
		t.Errorf("cache-off Fig 14 trace hash %s != golden %s (%d bytes)",
			got, goldenTraceSHA, trace.Len())
	}
	var csv bytes.Buffer
	if err := r.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if got := sha(csv.Bytes()); got != goldenCSVSHA {
		t.Errorf("cache-off Fig 14 CSV hash %s != golden %s", got, goldenCSVSHA)
	}
}
