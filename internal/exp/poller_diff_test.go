package exp

// Differential safety net for the poller-registry refactor: selecting the
// default ROP poller *explicitly* — by name through domino.Config.Poller on
// the legacy path and through scheme_config.Poller on the spec path — must
// reproduce the pre-refactor DOMINO golden byte for byte. This pins that the
// poll.Poller seam is a pure refactor of the old hard-wired rop calls.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/domino"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/topo"
)

// TestA2PScalesPastROPCeiling is the ISSUE acceptance run: a 200-client
// single-AP spec — far past ROP's 24-subchannel ceiling — completes end to
// end under the A2P grouped poller with every client polled (none truncated)
// and backlog reports decoding.
func TestA2PScalesPastROPCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("200-client run")
	}
	sc, err := core.BuildScenario(spec.Spec{
		Scheme:       "DOMINO",
		SchemeConfig: json.RawMessage(`{"Poller": "A2P", "SignatureChips": 511}`),
		Topology:     spec.Topology{Kind: "grid", Buildings: 1, APs: 1, Clients: 200},
		Seed:         2,
		Duration:     spec.Duration(100 * sim.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Domino
	if e == nil {
		t.Fatal("no DOMINO engine in result")
	}
	if n := len(res.UnpolledClients); n != 0 {
		t.Errorf("%d clients unpolled under A2P (unbounded poller must take all)", n)
	}
	if e.PollDecoded == 0 {
		t.Error("no backlog reports decoded in 100 ms")
	}
	// ceil(200/24) = 9 rounds per cycle; the engine must have scheduled
	// multi-round cycles, not single-symbol ROP slots.
	if e.Polls > 0 && e.PollRounds < 9*e.Polls {
		t.Errorf("PollRounds %d < 9 per poll cycle (%d cycles)", e.PollRounds, e.Polls)
	}
	if res.AggregateMbps <= 0 {
		t.Errorf("aggregate throughput %v Mbps, want > 0", res.AggregateMbps)
	}
}

func TestExplicitROPPollerMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("two traced 300 ms runs")
	}
	var golden *struct {
		scheme    string
		enum      core.Scheme
		seed      int64
		traceSHA  string
		aggregate string
	}
	for i := range singleRunGoldens {
		if singleRunGoldens[i].scheme == "DOMINO" {
			golden = &singleRunGoldens[i]
		}
	}
	if golden == nil {
		t.Fatal("no DOMINO entry in singleRunGoldens")
	}

	t.Run("legacy", func(t *testing.T) {
		var buf bytes.Buffer
		nd := obs.NewNDJSON(&buf)
		res := core.Run(core.Scenario{
			Net:        topo.Figure7(),
			Downlink:   true,
			Uplink:     true,
			Scheme:     core.DOMINO,
			Seed:       golden.seed,
			Duration:   300 * sim.Millisecond,
			Traffic:    core.Saturated,
			Tracer:     nd,
			TuneDomino: func(c *domino.Config) { c.Poller = "ROP" },
		})
		if err := nd.Flush(); err != nil {
			t.Fatal(err)
		}
		if got := sha(buf.Bytes()); got != golden.traceSHA {
			t.Errorf("explicit ROP trace hash %s != golden %s", got, golden.traceSHA)
		}
		if got := fmt.Sprintf("%.6f", res.AggregateMbps); got != golden.aggregate {
			t.Errorf("explicit ROP aggregate %s Mbps != golden %s", got, golden.aggregate)
		}
	})

	t.Run("spec", func(t *testing.T) {
		sc, err := core.BuildScenario(spec.Spec{
			Scheme:       "DOMINO",
			SchemeConfig: json.RawMessage(`{"Poller": "ROP"}`),
			Topology:     spec.Topology{Kind: "fig7"},
			Seed:         golden.seed,
			Duration:     spec.Duration(300 * sim.Millisecond),
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		nd := obs.NewNDJSON(&buf)
		sc.Tracer = nd
		res, err := core.RunScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.Flush(); err != nil {
			t.Fatal(err)
		}
		if got := sha(buf.Bytes()); got != golden.traceSHA {
			t.Errorf("spec ROP trace hash %s != golden %s", got, golden.traceSHA)
		}
		if got := fmt.Sprintf("%.6f", res.AggregateMbps); got != golden.aggregate {
			t.Errorf("spec ROP aggregate %s Mbps != golden %s", got, golden.aggregate)
		}
	})
}
