package exp

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/domino"
	"repro/internal/parallel"
	"repro/internal/strict"
)

// SchedulerSweepResult compares DOMINO under every registered strict
// scheduling policy (internal/strict registry) on the same topology and
// workload: the converter is scheduler-agnostic (§3, contribution 1), so any
// throughput spread comes from the policies themselves.
type SchedulerSweepResult struct {
	Schedulers []string
	// Saturated-workload rows, indexed like Schedulers.
	ThroughputMbps []float64
	Fairness       []float64
	DelayUs        []float64
	SelfStarts     []int
}

// SchedulerSweep runs saturated T(10,2) once per registered scheduler,
// selected purely by name through domino.Config.Scheduler — the same path a
// spec file's scheme_config.scheduler takes.
func SchedulerSweep(o Options) (SchedulerSweepResult, error) {
	o = o.withDefaults()
	res := SchedulerSweepResult{Schedulers: strict.SchedulerNames()}
	runs := parallel.Map(o.Workers, len(res.Schedulers), func(i int) errCell[core.Result] {
		net, err := T10x2(o.Seed)
		if err != nil {
			return errCell[core.Result]{err: err}
		}
		r, err := core.RunScenario(core.Scenario{
			Net: net, Downlink: true, Uplink: true, Scheme: core.DOMINO,
			Seed: o.Seed, Duration: o.Duration, Warmup: o.Warmup,
			Traffic:    core.Saturated,
			TuneDomino: func(c *domino.Config) { c.Scheduler = res.Schedulers[i] },
		})
		return errCell[core.Result]{v: r, err: err}
	})
	if err := firstErr(runs); err != nil {
		return res, err
	}
	for _, run := range runs {
		r := run.v
		res.ThroughputMbps = append(res.ThroughputMbps, r.AggregateMbps)
		res.Fairness = append(res.Fairness, r.Fairness)
		res.DelayUs = append(res.DelayUs, r.MeanDelayPerLink.Microseconds())
		selfStarts := 0
		if r.Domino != nil {
			selfStarts = r.Domino.SelfStarts
		}
		res.SelfStarts = append(res.SelfStarts, selfStarts)
	}
	return res, nil
}

// Print renders the per-scheduler comparison.
func (r SchedulerSweepResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Scheduler sweep: DOMINO under each registered strict policy, T(10,2) saturated")
	hline(w, 78)
	fmt.Fprintf(w, "%-14s %12s %9s %11s %11s\n",
		"scheduler", "tput (Mbps)", "Jain", "delay (µs)", "self-starts")
	for i, name := range r.Schedulers {
		fmt.Fprintf(w, "%-14s %12.2f %9.3f %11.0f %11d\n",
			name, r.ThroughputMbps[i], r.Fairness[i], r.DelayUs[i], r.SelfStarts[i])
	}
}

// CSV writes one row per scheduler.
func (r SchedulerSweepResult) CSV(w io.Writer) error {
	rows := make([][]string, len(r.Schedulers))
	for i, name := range r.Schedulers {
		rows[i] = []string{
			name,
			fmt.Sprintf("%.4f", r.ThroughputMbps[i]),
			fmt.Sprintf("%.4f", r.Fairness[i]),
			fmt.Sprintf("%.1f", r.DelayUs[i]),
			fmt.Sprintf("%d", r.SelfStarts[i]),
		}
	}
	return writeCSV(w, []string{"scheduler", "throughput_mbps", "fairness", "delay_us", "self_starts"}, rows)
}
