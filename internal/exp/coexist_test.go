package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestCoexistShape(t *testing.T) {
	o := small()
	r := Coexist(o)
	// With no CoP, DOMINO's NAV-protected chain starves the external pair.
	if r.ExternalMbps[0] > 1.0 {
		t.Errorf("external pair got %.2f Mbps with zero CoP; NAV should starve it", r.ExternalMbps[0])
	}
	if r.DominoMbps[0] < 7 {
		t.Errorf("DOMINO only %.2f Mbps with the whole channel", r.DominoMbps[0])
	}
	// Growing the CoP hands the external pair a growing share and costs
	// DOMINO throughput.
	last := len(r.CoPMs) - 1
	if r.ExternalMbps[last] < 1.5 {
		t.Errorf("external pair got %.2f Mbps with a %v ms CoP", r.ExternalMbps[last], r.CoPMs[last])
	}
	if r.DominoMbps[last] >= r.DominoMbps[0] {
		t.Errorf("DOMINO did not pay for the CoP: %.2f vs %.2f", r.DominoMbps[last], r.DominoMbps[0])
	}
	for i := 1; i <= last; i++ {
		if r.ExternalMbps[i] < r.ExternalMbps[i-1]-0.5 {
			t.Errorf("external share not growing with CoP: %v", r.ExternalMbps)
		}
	}
	var b bytes.Buffer
	r.Print(&b)
	if !strings.Contains(b.String(), "external") {
		t.Error("print malformed")
	}
}
