package strict

import (
	"fmt"

	"repro/internal/mac"
	"repro/internal/scheme"
)

func init() {
	scheme.MustRegister(scheme.Descriptor{
		Name:               "Omniscient",
		Aliases:            []string{"omni"},
		Summary:            "perfectly synchronized, perfect-knowledge upper bound (Fig 2)",
		NeedsConflictGraph: true,
		DefaultConfig: func(p scheme.Params) any {
			cfg := DefaultConfig()
			cfg.Rate = p.Rate
			return &cfg
		},
		Build: func(ctx scheme.BuildContext, cfg any) (mac.Engine, error) {
			c, ok := cfg.(*Config)
			if !ok {
				return nil, fmt.Errorf("strict: Build got config %T, want *strict.Config", cfg)
			}
			return New(ctx.Kernel, ctx.Medium, ctx.Graph, ctx.Events, *c), nil
		},
		Checkpointer: func(e mac.Engine) scheme.EngineState {
			eng, ok := e.(*Omniscient)
			if !ok {
				return scheme.EngineState{Scheme: "Omniscient"}
			}
			return scheme.EngineState{Scheme: "Omniscient", Counters: map[string]int64{
				"slots":    int64(eng.Slots),
				"failures": int64(eng.Failures),
			}}
		},
	})
}
