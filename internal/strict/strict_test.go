package strict

import (
	"testing"

	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func graphFor(t *testing.T, net *topo.Network, down, up bool) *topo.ConflictGraph {
	t.Helper()
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	return topo.NewConflictGraph(net, net.BuildLinks(down, up), phy.DefaultConfig(), phy.Rate12)
}

func TestRANDSlotIndependence(t *testing.T) {
	g := graphFor(t, topo.Figure7(), true, true)
	r := NewRAND(g)
	all := func(int) int { return 1 }
	for i := 0; i < 20; i++ {
		slot := r.NextSlot(all)
		if len(slot) == 0 {
			t.Fatal("saturated network produced empty slot")
		}
		for a := 0; a < len(slot); a++ {
			for b := a + 1; b < len(slot); b++ {
				if g.Conflicts(slot[a], slot[b]) {
					t.Fatalf("slot %v contains conflicting links", slot)
				}
			}
		}
		// Maximality: no backlogged link outside the slot is compatible.
		for id := range g.Links {
			in := false
			for _, s := range slot {
				if s == id {
					in = true
				}
			}
			if in {
				continue
			}
			ok := true
			for _, s := range slot {
				if g.Conflicts(id, s) {
					ok = false
				}
			}
			if ok {
				t.Fatalf("slot %v not maximal: link %d fits", slot, id)
			}
		}
	}
}

func TestRANDFairRotation(t *testing.T) {
	// In Figure 7's downlink graph (conflicts {0,1} and {2,3}), RAND must
	// alternate between the two halves of each conflicting pair — the
	// schedule of paper Fig 7(c).
	g := graphFor(t, topo.Figure7(), true, false)
	r := NewRAND(g)
	counts := make([]int, 4)
	for i := 0; i < 40; i++ {
		for _, id := range r.NextSlot(func(int) int { return 1 }) {
			counts[id]++
		}
	}
	for id, c := range counts {
		if c != 20 {
			t.Errorf("link %d scheduled %d/40 slots, want exactly 20 (alternation)", id, c)
		}
	}
}

func TestRANDSkipsIdleLinks(t *testing.T) {
	g := graphFor(t, topo.Figure7(), true, false)
	r := NewRAND(g)
	slot := r.NextSlot(func(id int) int {
		if id == 2 {
			return 1
		}
		return 0
	})
	if len(slot) != 1 || slot[0] != 2 {
		t.Fatalf("slot = %v, want [2]", slot)
	}
	if s := r.NextSlot(func(int) int { return 0 }); s != nil {
		t.Fatalf("idle network returned slot %v", s)
	}
}

func TestRANDBatch(t *testing.T) {
	g := graphFor(t, topo.Figure7(), true, false)
	r := NewRAND(g)
	est := []int{2, 1, 1, 0}
	batch := r.Batch(est, 10)
	// Total scheduled transmissions must equal the estimates.
	got := make([]int, 4)
	for _, slot := range batch {
		for _, id := range slot {
			got[id]++
		}
	}
	for id := range est {
		if got[id] != est[id] {
			t.Errorf("link %d scheduled %d times, want %d", id, got[id], est[id])
		}
	}
	if len(batch) > 10 {
		t.Errorf("batch exceeded slot budget: %d", len(batch))
	}
	// Estimates unchanged (Batch must not mutate its argument).
	if est[0] != 2 {
		t.Error("Batch mutated the estimate slice")
	}
	// Slot budget respected under infinite backlog.
	long := r.Batch([]int{100, 100, 100, 100}, 7)
	if len(long) != 7 {
		t.Errorf("batch length = %d, want 7", len(long))
	}
}

func omniRig(t *testing.T, net *topo.Network, down, up bool, seed int64) (*sim.Kernel, *Omniscient, *stats.Collector, []*topo.Link) {
	t.Helper()
	g := graphFor(t, net, down, up)
	k := sim.New(seed)
	medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
	hub := &mac.Hub{}
	e := New(k, medium, g, hub, DefaultConfig())
	coll := stats.NewCollector(len(g.Links), 0)
	hub.Add(coll)
	for _, l := range g.Links {
		s := traffic.NewSaturated(k, e, l, 512, 8)
		hub.Add(s)
		s.Start()
	}
	e.Start()
	return k, e, coll, g.Links
}

func TestOmniscientSingleDomain(t *testing.T) {
	// Two conflicting links: perfect TDMA alternation, zero failures, each
	// link gets half the channel with no backoff overhead.
	k, e, coll, _ := omniRig(t, topo.TwoPairs(topo.SameContention), true, false, 1)
	k.RunUntil(2 * sim.Second)
	if e.Failures != 0 {
		t.Errorf("conflict-free schedule had %d failures", e.Failures)
	}
	a := coll.ThroughputMbps(0, 2*sim.Second)
	b := coll.ThroughputMbps(1, 2*sim.Second)
	// Slot = 364+10+32+9 = 415 µs -> 9.87 Mbps aggregate, 4.93 each.
	if a+b < 9.0 || a+b > 10.4 {
		t.Errorf("aggregate = %.2f, want ≈9.9", a+b)
	}
	if f := stats.JainIndex([]float64{a, b}); f < 0.999 {
		t.Errorf("TDMA fairness = %v", f)
	}
}

func TestOmniscientExposedConcurrency(t *testing.T) {
	// Four mutually exposed links (Fig 13a): all four transmit every slot.
	k, e, coll, links := omniRig(t, topo.Figure13a(), true, false, 2)
	k.RunUntil(2 * sim.Second)
	if e.Failures != 0 {
		t.Errorf("failures = %d", e.Failures)
	}
	for _, l := range links {
		tput := coll.ThroughputMbps(l.ID, 2*sim.Second)
		if tput < 9.0 {
			t.Errorf("link %v only %.2f Mbps; exposed links should all run at full rate", l, tput)
		}
	}
}

func TestOmniscientHiddenPairAlternates(t *testing.T) {
	// Hidden terminals are trivial for a synchronized scheduler: perfect
	// alternation, no collisions at all.
	k, e, coll, _ := omniRig(t, topo.TwoPairs(topo.HiddenTerminals), true, false, 3)
	k.RunUntil(2 * sim.Second)
	if e.Failures != 0 {
		t.Errorf("failures = %d", e.Failures)
	}
	if total := coll.AggregateMbps(2 * sim.Second); total < 9.0 {
		t.Errorf("hidden pair under omniscient = %.2f Mbps, want ≈9.9", total)
	}
}

// TestOmniscientFigure1 reproduces the omniscient bars of Fig 2: C2→AP2
// transmits in every slot while AP1→C1 and AP3→C3 alternate.
func TestOmniscientFigure1(t *testing.T) {
	net := topo.Figure1()
	links := topo.Figure1Links(net)
	g := topo.NewConflictGraph(net, links, phy.DefaultConfig(), phy.Rate12)
	k := sim.New(4)
	medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
	hub := &mac.Hub{}
	e := New(k, medium, g, hub, DefaultConfig())
	coll := stats.NewCollector(len(links), 0)
	hub.Add(coll)
	for _, l := range links {
		s := traffic.NewSaturated(k, e, l, 512, 8)
		hub.Add(s)
		s.Start()
	}
	e.Start()
	k.RunUntil(4 * sim.Second)
	end := 4 * sim.Second
	ap1 := coll.ThroughputMbps(0, end)
	c2 := coll.ThroughputMbps(1, end)
	ap3 := coll.ThroughputMbps(2, end)
	if c2 < 9.0 {
		t.Errorf("C2→AP2 = %.2f Mbps, want full rate (scheduled every slot)", c2)
	}
	if ap1 < 4.2 || ap3 < 4.2 {
		t.Errorf("alternating links: AP1 %.2f, AP3 %.2f, want ≈4.9 each", ap1, ap3)
	}
	t.Logf("Fig1 omniscient: AP1→C1 %.2f, C2→AP2 %.2f, AP3→C3 %.2f Mbps", ap1, c2, ap3)
}

func TestOmniscientQueueDrainsIdle(t *testing.T) {
	// A finite burst drains and the executor idles without failures.
	net := topo.TwoPairs(topo.ExposedTerminals)
	g := graphFor(t, net, true, false)
	k := sim.New(5)
	medium := phy.NewMedium(k, net.RSS, phy.DefaultConfig())
	hub := &mac.Hub{}
	e := New(k, medium, g, hub, DefaultConfig())
	var delivered int
	hub.Add(eventsCounter{&delivered})
	e.Start()
	for i := 0; i < 20; i++ {
		e.Enqueue(&mac.Packet{Link: g.Links[0], Bytes: 512, Enqueued: 0})
	}
	k.RunUntil(sim.Second)
	if delivered != 20 {
		t.Errorf("delivered %d/20", delivered)
	}
	if e.QueueLen(0) != 0 {
		t.Errorf("queue not drained: %d", e.QueueLen(0))
	}
}

type eventsCounter struct{ n *int }

func (c eventsCounter) Delivered(*mac.Packet, sim.Time) { *c.n++ }
func (c eventsCounter) Dropped(*mac.Packet, sim.Time)   {}
