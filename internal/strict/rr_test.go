package strict

import (
	"testing"

	"repro/internal/topo"
)

func TestRoundRobinSeedCycles(t *testing.T) {
	g := graphFor(t, topo.Figure7(), true, false) // conflicts {0,1},{2,3}
	r := NewRoundRobin(g)
	all := func(int) int { return 1 }
	// The seed pointer advances one link per slot, so the first element of
	// four consecutive saturated slots walks 0,1,2,3.
	for want := 0; want < 4; want++ {
		slot := r.NextSlot(all)
		if len(slot) == 0 {
			t.Fatal("saturated network produced empty slot")
		}
		if slot[0] != want {
			t.Errorf("slot %d seed = %d, want %d (slot %v)", want, slot[0], want, slot)
		}
	}
}

func TestRoundRobinSkipsIdleSeeds(t *testing.T) {
	g := graphFor(t, topo.Figure7(), true, false)
	r := NewRoundRobin(g)
	q := []int{0, 0, 1, 1}
	slot := r.NextSlot(func(id int) int { return q[id] })
	if len(slot) == 0 || slot[0] != 2 {
		t.Errorf("slot %v should seed at first backlogged link 2", slot)
	}
	if s := r.NextSlot(func(int) int { return 0 }); s != nil {
		t.Errorf("idle slot = %v", s)
	}
}

func TestRoundRobinSlotIndependence(t *testing.T) {
	g := graphFor(t, topo.Figure7(), true, true)
	r := NewRoundRobin(g)
	for i := 0; i < 20; i++ {
		slot := r.NextSlot(func(int) int { return 1 })
		if len(slot) == 0 {
			t.Fatal("saturated network produced empty slot")
		}
		for a := 0; a < len(slot); a++ {
			for b := a + 1; b < len(slot); b++ {
				if g.Conflicts(slot[a], slot[b]) {
					t.Fatalf("slot %v conflicts", slot)
				}
			}
		}
	}
}

func TestRoundRobinBatchConservation(t *testing.T) {
	g := graphFor(t, topo.Figure7(), true, false)
	r := NewRoundRobin(g)
	est := []int{3, 2, 0, 5}
	batch := r.Batch(est, 20)
	got := make([]int, 4)
	for _, slot := range batch {
		for _, id := range slot {
			got[id]++
		}
	}
	for id := range est {
		if got[id] != est[id] {
			t.Errorf("link %d scheduled %d, want %d", id, got[id], est[id])
		}
	}
}

func TestWeightedAlternatesUnderConstantBacklog(t *testing.T) {
	g := graphFor(t, topo.Figure7(), true, false) // conflicts {0,1},{2,3}
	w := NewWeighted(g, DefaultWeightedConfig())
	// Links 0 and 1 conflict; 0 always has the deeper queue. LQF would pick 0
	// every slot and starve 1; proportional fairness must alternate once 0's
	// service history builds up.
	q := []int{5, 4, 0, 0}
	winners := map[int]int{}
	for i := 0; i < 10; i++ {
		slot := w.NextSlot(func(id int) int { return q[id] })
		if len(slot) == 0 {
			t.Fatal("backlogged network produced empty slot")
		}
		winners[slot[0]]++
	}
	if winners[0] == 0 || winners[1] == 0 {
		t.Errorf("winners %v: both conflicting links should lead some slots", winners)
	}
}

func TestWeightedBatchConservation(t *testing.T) {
	g := graphFor(t, topo.Figure7(), true, false)
	w := NewWeighted(g, DefaultWeightedConfig())
	est := []int{3, 2, 0, 5}
	batch := w.Batch(est, 20)
	got := make([]int, 4)
	for _, slot := range batch {
		for _, id := range slot {
			got[id]++
		}
	}
	for id := range est {
		if got[id] != est[id] {
			t.Errorf("link %d scheduled %d, want %d", id, got[id], est[id])
		}
	}
}
