// Package strict implements strict (slot-indexed) centralized scheduling: the
// RAND-style greedy maximal-independent-set scheduler the paper modifies
// (§4.2.1, after Ramanathan), and an omniscient executor that runs a strict
// schedule under perfect time synchronization with perfect queue knowledge —
// the upper bound of paper Fig 2. DOMINO's converter (internal/convert) turns
// the same schedules into trigger-driven relative schedules.
package strict

import (
	"sort"

	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Slot is a set of link IDs scheduled to transmit concurrently.
type Slot []int

// Schedule is a sequence of slots (one batch of strict scheduling).
type Schedule []Slot

// Scheduler produces strict schedules from backlog information. DOMINO's
// converter accepts any implementation (the paper's claim: relative
// scheduling "is able to work with any arbitrary centralized scheduling
// algorithm"); RAND and LQF are provided.
type Scheduler interface {
	// NextSlot builds one slot from the links for which backlog reports a
	// positive backlog; nil when nothing is backlogged. backlog(id) returns
	// the number of queued packets on link id.
	NextSlot(backlog func(link int) int) Slot
	// Batch schedules up to maxSlots slots against estimated backlogs
	// (packets per link), decrementing estimates as links are scheduled.
	Batch(est []int, maxSlots int) Schedule
}

// RAND is the greedy scheduler: for each slot, take the first backlogged
// link in the rotation queue, then greedily add every later backlogged link
// that conflicts with nothing already chosen; rotate the chosen links to the
// back for fairness.
type RAND struct {
	g     *topo.ConflictGraph
	order []int // rotation queue Q of link IDs
}

// NewRAND builds the scheduler over a conflict graph.
func NewRAND(g *topo.ConflictGraph) *RAND {
	r := &RAND{g: g, order: make([]int, len(g.Links))}
	for i := range r.order {
		r.order[i] = i
	}
	return r
}

// NextSlot builds one slot from the links with positive backlog, rotating
// scheduled links to the back of Q. It returns nil when nothing is
// backlogged.
func (r *RAND) NextSlot(backlog func(link int) int) Slot {
	var slot Slot
	chosen := make(map[int]bool)
	for _, id := range r.order {
		if backlog(id) <= 0 || chosen[id] {
			continue
		}
		ok := true
		for _, s := range slot {
			if r.g.Conflicts(id, s) {
				ok = false
				break
			}
		}
		if ok {
			slot = append(slot, id)
			chosen[id] = true
		}
	}
	if len(slot) == 0 {
		return nil
	}
	// Move the chosen links to the end of Q, preserving relative order.
	var rest []int
	for _, id := range r.order {
		if !chosen[id] {
			rest = append(rest, id)
		}
	}
	r.order = append(rest, slot...)
	return slot
}

// Batch schedules up to maxSlots slots against an estimated backlog
// (packets per link), decrementing estimates as links are scheduled — the
// central server's planning step between pollings. Scheduling stops early
// when the estimates drain.
func (r *RAND) Batch(est []int, maxSlots int) Schedule {
	return batchOf(r, est, maxSlots)
}

// batchOf drains a copy of est through s.NextSlot for up to maxSlots slots —
// the shared Batch body of every registered policy.
func batchOf(s Scheduler, est []int, maxSlots int) Schedule {
	remaining := append([]int(nil), est...)
	var out Schedule
	for len(out) < maxSlots {
		slot := s.NextSlot(func(id int) int { return remaining[id] })
		if slot == nil {
			break
		}
		for _, id := range slot {
			remaining[id]--
		}
		out = append(out, slot)
	}
	return out
}

// LQF is a longest-queue-first greedy scheduler: each slot is seeded with the
// most-backlogged link, then extended greedily by the next-longest compatible
// queues — a max-weight-flavoured alternative demonstrating the converter's
// scheduler-independence.
type LQF struct {
	g *topo.ConflictGraph
}

// NewLQF builds the scheduler over a conflict graph.
func NewLQF(g *topo.ConflictGraph) *LQF { return &LQF{g: g} }

// NextSlot implements Scheduler.
func (l *LQF) NextSlot(backlog func(link int) int) Slot {
	type cand struct {
		id int
		q  int
	}
	var cands []cand
	for id := range l.g.Links {
		if q := backlog(id); q > 0 {
			cands = append(cands, cand{id, q})
		}
	}
	if len(cands) == 0 {
		return nil
	}
	// Longest queue first; ties by link ID for determinism.
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].q != cands[b].q {
			return cands[a].q > cands[b].q
		}
		return cands[a].id < cands[b].id
	})
	var slot Slot
	for _, c := range cands {
		ok := true
		for _, s := range slot {
			if l.g.Conflicts(c.id, s) {
				ok = false
				break
			}
		}
		if ok {
			slot = append(slot, c.id)
		}
	}
	return slot
}

// Batch implements Scheduler.
func (l *LQF) Batch(est []int, maxSlots int) Schedule {
	return batchOf(l, est, maxSlots)
}

// Order exposes the current rotation for tests.
func (r *RAND) Order() []int { return append([]int(nil), r.order...) }

// Config parameterises the omniscient executor.
type Config struct {
	Rate phy.Rate
	// SlotGuard pads each slot beyond data + SIFS + ACK.
	SlotGuard sim.Time
	QueueCap  int
}

// DefaultConfig uses the evaluation's 12 Mbps rate.
func DefaultConfig() Config {
	return Config{Rate: phy.Rate12, SlotGuard: phy.SlotTime, QueueCap: mac.DefaultQueueCap}
}

// Omniscient executes strict schedules with perfect synchronization and
// perfect queue knowledge: at every slot boundary it computes a fresh RAND
// slot from the true queues and fires all scheduled senders simultaneously.
// Frames still traverse the physical medium — if the conflict graph admits a
// combination whose aggregate interference breaks a link, the loss is real
// and the packet retries.
type Omniscient struct {
	k      *sim.Kernel
	medium *phy.Medium
	links  []*topo.Link
	events mac.Events
	cfg    Config
	sched  *RAND
	queues []*mac.Queue
	nodes  map[phy.NodeID]*onode

	// Slots counts scheduling rounds; Failures counts unacknowledged
	// transmissions (which are retried).
	Slots    int
	Failures int
}

type onode struct {
	e  *Omniscient
	id phy.NodeID
	// inflight is the packet awaiting its ACK this slot.
	inflight *mac.Packet
	acked    bool
}

// New builds the omniscient executor.
func New(k *sim.Kernel, medium *phy.Medium, g *topo.ConflictGraph, events mac.Events, cfg Config) *Omniscient {
	if events == nil {
		events = mac.NopEvents{}
	}
	e := &Omniscient{
		k: k, medium: medium, links: g.Links, events: events, cfg: cfg,
		sched: NewRAND(g), nodes: map[phy.NodeID]*onode{},
	}
	e.queues = make([]*mac.Queue, len(g.Links))
	for _, l := range g.Links {
		e.queues[l.ID] = mac.NewQueue(cfg.QueueCap)
	}
	add := func(id phy.NodeID) {
		if _, ok := e.nodes[id]; !ok {
			n := &onode{e: e, id: id}
			e.nodes[id] = n
			medium.Register(id, n)
		}
	}
	for _, l := range g.Links {
		add(l.Sender)
		add(l.Receiver)
	}
	return e
}

// Start implements mac.Engine.
func (e *Omniscient) Start() { e.k.After(0, e.tick) }

// Enqueue implements mac.Engine.
func (e *Omniscient) Enqueue(p *mac.Packet) {
	if !e.queues[p.Link.ID].Push(p) {
		e.events.Dropped(p, e.k.Now())
	}
}

// QueueLen implements mac.Engine.
func (e *Omniscient) QueueLen(link int) int { return e.queues[link].Len() }

// slotDuration is the fixed per-slot air time: the longest data frame plus
// SIFS, ACK and guard.
func (e *Omniscient) slotDuration(maxBytes int) sim.Time {
	return phy.Airtime(maxBytes, e.cfg.Rate) + phy.SIFS +
		phy.Airtime(phy.AckBytes, e.cfg.Rate) + e.cfg.SlotGuard
}

func (e *Omniscient) tick() {
	slot := e.sched.NextSlot(func(id int) int { return e.queues[id].Len() })
	if slot == nil {
		// Idle: poll again after one empty slot.
		e.k.After(e.slotDuration(512), e.tick)
		return
	}
	e.Slots++
	maxBytes := 0
	for _, id := range slot {
		if b := e.queues[id].Peek().Bytes; b > maxBytes {
			maxBytes = b
		}
	}
	for _, id := range slot {
		l := e.links[id]
		p := e.queues[id].Pop()
		n := e.nodes[l.Sender]
		n.inflight = p
		n.acked = false
		e.medium.Transmit(l.Sender, &phy.Frame{
			Kind: phy.Data, Dst: l.Receiver, Bytes: p.Bytes, Rate: e.cfg.Rate,
			Payload: p,
		})
	}
	dur := e.slotDuration(maxBytes)
	e.k.After(dur, func() {
		for _, id := range slot {
			n := e.nodes[e.links[id].Sender]
			if n.inflight == nil {
				continue
			}
			p := n.inflight
			n.inflight = nil
			if n.acked {
				e.events.Delivered(p, e.k.Now())
			} else {
				// Retry at the head of the queue next time the scheduler
				// picks this link.
				e.Failures++
				p.Retries++
				if p.Retries > mac.RetryLimit {
					e.events.Dropped(p, e.k.Now())
				} else {
					e.queues[id].PushFront(p)
				}
			}
		}
		e.tick()
	})
}

// CarrierChanged implements phy.Listener; the omniscient executor ignores
// carrier sensing entirely.
func (*onode) CarrierChanged(bool) {}

// FrameReceived implements phy.Listener.
func (n *onode) FrameReceived(f *phy.Frame, ok bool, _ *phy.SignatureDetection) {
	if !ok || f.Dst != n.id {
		return
	}
	switch f.Kind {
	case phy.Data:
		p := f.Payload.(*mac.Packet)
		n.e.k.After(phy.SIFS, func() {
			if n.e.medium.Transmitting(n.id) {
				return
			}
			n.e.medium.Transmit(n.id, &phy.Frame{
				Kind: phy.Ack, Dst: f.Src, Bytes: phy.AckBytes,
				Rate: n.e.cfg.Rate, Payload: p,
			})
		})
	case phy.Ack:
		if n.inflight != nil && f.Payload.(*mac.Packet) == n.inflight {
			n.acked = true
		}
	}
}
