package strict

import "repro/internal/topo"

// RoundRobin cycles a seed pointer over the fixed link-ID order: each slot is
// seeded with the first backlogged link at or after the pointer, extended
// greedily in ID order from the seed onward (wrapping), and the pointer
// advances one past the seed. Unlike RAND's rotation queue — where every
// scheduled link moves to the back — the pointer here moves exactly one
// position per slot, so heavily-scheduled links come around again sooner.
type RoundRobin struct {
	g    *topo.ConflictGraph
	next int // link ID at which the next slot's seed scan starts
}

// NewRoundRobin builds the scheduler over a conflict graph.
func NewRoundRobin(g *topo.ConflictGraph) *RoundRobin { return &RoundRobin{g: g} }

// NextSlot implements Scheduler.
func (r *RoundRobin) NextSlot(backlog func(link int) int) Slot {
	n := len(r.g.Links)
	if n == 0 {
		return nil
	}
	seed := -1
	for i := 0; i < n; i++ {
		id := (r.next + i) % n
		if backlog(id) > 0 {
			seed = id
			break
		}
	}
	if seed < 0 {
		return nil
	}
	slot := Slot{seed}
	for i := 1; i < n; i++ {
		id := (seed + i) % n
		if backlog(id) <= 0 {
			continue
		}
		ok := true
		for _, s := range slot {
			if r.g.Conflicts(id, s) {
				ok = false
				break
			}
		}
		if ok {
			slot = append(slot, id)
		}
	}
	r.next = (seed + 1) % n
	return slot
}

// Batch implements Scheduler.
func (r *RoundRobin) Batch(est []int, maxSlots int) Schedule {
	return batchOf(r, est, maxSlots)
}

func init() {
	MustRegisterScheduler(SchedulerDescriptor{
		Name:    "RoundRobin",
		Aliases: []string{"rr"},
		Summary: "cycling seed pointer over link IDs, greedy ID-order extension",
		Build: func(g *topo.ConflictGraph, _ any) (Scheduler, error) {
			return NewRoundRobin(g), nil
		},
	})
}
