package strict

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/topo"
)

// SchedulerDescriptor is one registered strict scheduling policy. It mirrors
// the scheme registry (internal/scheme): engines resolve a policy purely by
// name, so adding a fifth scheduler is one RegisterScheduler call — no edits
// to internal/domino or internal/core.
type SchedulerDescriptor struct {
	// Name is the canonical policy name ("RAND"). Lookup is case-insensitive,
	// so CLI spellings need no aliases unless they differ by more than case.
	Name string
	// Aliases are additional accepted names ("rr" for "RoundRobin").
	Aliases []string
	// Summary is a one-line description for CLI listings.
	Summary string
	// DefaultConfig returns a pointer to a fresh config struct, or nil for
	// policies without knobs. Callers may mutate the value before Build.
	DefaultConfig func() any
	// Build constructs the scheduler over a conflict graph. cfg is the
	// (possibly tuned) value DefaultConfig returned — nil when DefaultConfig
	// is nil.
	Build func(g *topo.ConflictGraph, cfg any) (Scheduler, error)
}

var (
	schedMu       sync.RWMutex
	schedRegistry = map[string]*SchedulerDescriptor{}
	// schedCanonical lists canonical names only, for SchedulerNames().
	schedCanonical []string
)

// RegisterScheduler adds a policy to the registry. It fails on empty or
// duplicate names (aliases included) and on a missing Build function.
func RegisterScheduler(d SchedulerDescriptor) error {
	if d.Name == "" {
		return fmt.Errorf("strict: RegisterScheduler with empty Name")
	}
	if d.Build == nil {
		return fmt.Errorf("strict: scheduler %s: Build is required", d.Name)
	}
	schedMu.Lock()
	defer schedMu.Unlock()
	keys := append([]string{d.Name}, d.Aliases...)
	for _, k := range keys {
		if prev, ok := schedRegistry[strings.ToLower(k)]; ok {
			return fmt.Errorf("strict: scheduler %q already registered (by %s)", k, prev.Name)
		}
	}
	desc := d
	for _, k := range keys {
		schedRegistry[strings.ToLower(k)] = &desc
	}
	schedCanonical = append(schedCanonical, d.Name)
	sort.Strings(schedCanonical)
	return nil
}

// MustRegisterScheduler is RegisterScheduler for init-time use; it panics on
// conflict.
func MustRegisterScheduler(d SchedulerDescriptor) {
	if err := RegisterScheduler(d); err != nil {
		panic(err)
	}
}

// UnregisterScheduler removes a policy and its aliases; tests use it to clean
// up toy registrations. Unknown names are a no-op.
func UnregisterScheduler(name string) {
	schedMu.Lock()
	defer schedMu.Unlock()
	d, ok := schedRegistry[strings.ToLower(name)]
	if !ok {
		return
	}
	delete(schedRegistry, strings.ToLower(d.Name))
	for _, a := range d.Aliases {
		delete(schedRegistry, strings.ToLower(a))
	}
	for i, n := range schedCanonical {
		if n == d.Name {
			schedCanonical = append(schedCanonical[:i], schedCanonical[i+1:]...)
			break
		}
	}
}

// LookupScheduler resolves a policy name (canonical or alias,
// case-insensitive).
func LookupScheduler(name string) (*SchedulerDescriptor, bool) {
	schedMu.RLock()
	defer schedMu.RUnlock()
	d, ok := schedRegistry[strings.ToLower(name)]
	return d, ok
}

// SchedulerNames returns the canonical registered policy names, sorted.
func SchedulerNames() []string {
	schedMu.RLock()
	defer schedMu.RUnlock()
	return append([]string(nil), schedCanonical...)
}

// BuildScheduler builds the named policy over g with its default config. The
// error for an unknown name lists what is registered.
func BuildScheduler(name string, g *topo.ConflictGraph) (Scheduler, error) {
	d, ok := LookupScheduler(name)
	if !ok {
		return nil, fmt.Errorf("strict: unknown scheduler %q (have %s)",
			name, strings.Join(SchedulerNames(), ", "))
	}
	var cfg any
	if d.DefaultConfig != nil {
		cfg = d.DefaultConfig()
	}
	return d.Build(g, cfg)
}

func init() {
	MustRegisterScheduler(SchedulerDescriptor{
		Name:    "RAND",
		Summary: "greedy maximal-independent-set with rotation-queue fairness (§4.2.1, after Ramanathan)",
		Build: func(g *topo.ConflictGraph, _ any) (Scheduler, error) {
			return NewRAND(g), nil
		},
	})
	MustRegisterScheduler(SchedulerDescriptor{
		Name:    "LQF",
		Summary: "longest-queue-first greedy (max-weight flavoured)",
		Build: func(g *topo.ConflictGraph, _ any) (Scheduler, error) {
			return NewLQF(g), nil
		},
	})
}
