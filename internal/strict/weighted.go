package strict

import (
	"fmt"
	"sort"

	"repro/internal/topo"
)

// WeightedConfig parameterises the proportional-fair scheduler.
type WeightedConfig struct {
	// Decay multiplies each link's service history once per slot, so past
	// service fades geometrically. 0 remembers only the previous slot;
	// values near 1 remember service for a long time.
	Decay float64
}

// DefaultWeightedConfig remembers roughly the last ten slots of service.
func DefaultWeightedConfig() WeightedConfig { return WeightedConfig{Decay: 0.9} }

// Weighted is a proportional-fair-flavoured scheduler: each slot is built
// greedily in descending order of priority backlog(id) / (1 + service(id)),
// where service is an exponentially-decayed count of slots the link was
// scheduled in. Backlogged links that have been served a lot rank below
// backlogged links that have not — the classic PF trade of instantaneous
// demand against service history. Ties break by higher backlog, then lower
// link ID, so schedules are deterministic.
type Weighted struct {
	g       *topo.ConflictGraph
	cfg     WeightedConfig
	service []float64
}

// NewWeighted builds the scheduler over a conflict graph.
func NewWeighted(g *topo.ConflictGraph, cfg WeightedConfig) *Weighted {
	return &Weighted{g: g, cfg: cfg, service: make([]float64, len(g.Links))}
}

// NextSlot implements Scheduler.
func (w *Weighted) NextSlot(backlog func(link int) int) Slot {
	type cand struct {
		id   int
		q    int
		prio float64
	}
	var cands []cand
	for id := range w.g.Links {
		if q := backlog(id); q > 0 {
			cands = append(cands, cand{id, q, float64(q) / (1 + w.service[id])})
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].prio != cands[b].prio {
			return cands[a].prio > cands[b].prio
		}
		if cands[a].q != cands[b].q {
			return cands[a].q > cands[b].q
		}
		return cands[a].id < cands[b].id
	})
	var slot Slot
	for _, c := range cands {
		ok := true
		for _, s := range slot {
			if w.g.Conflicts(c.id, s) {
				ok = false
				break
			}
		}
		if ok {
			slot = append(slot, c.id)
		}
	}
	for i := range w.service {
		w.service[i] *= w.cfg.Decay
	}
	for _, id := range slot {
		w.service[id]++
	}
	return slot
}

// Batch implements Scheduler.
func (w *Weighted) Batch(est []int, maxSlots int) Schedule {
	return batchOf(w, est, maxSlots)
}

func init() {
	MustRegisterScheduler(SchedulerDescriptor{
		Name:    "Weighted",
		Aliases: []string{"pf", "proportional-fair"},
		Summary: "proportional-fair: backlog over decayed service history",
		DefaultConfig: func() any {
			cfg := DefaultWeightedConfig()
			return &cfg
		},
		Build: func(g *topo.ConflictGraph, cfg any) (Scheduler, error) {
			c, ok := cfg.(*WeightedConfig)
			if !ok {
				return nil, fmt.Errorf("strict: Weighted Build got config %T, want *strict.WeightedConfig", cfg)
			}
			return NewWeighted(g, *c), nil
		},
	})
}
