package strict

import (
	"strings"
	"testing"

	"repro/internal/topo"
)

func TestSchedulerRegistryBuiltins(t *testing.T) {
	for _, name := range []string{"RAND", "rand", "LQF", "lqf", "RoundRobin", "rr", "Weighted", "pf", "proportional-fair"} {
		d, ok := LookupScheduler(name)
		if !ok {
			t.Fatalf("LookupScheduler(%q) missing", name)
		}
		if d.Name == "" || d.Build == nil {
			t.Fatalf("LookupScheduler(%q) = incomplete descriptor %+v", name, d)
		}
	}
	names := SchedulerNames()
	want := []string{"LQF", "RAND", "RoundRobin", "Weighted"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("SchedulerNames() = %v, want %v", names, want)
	}
}

func TestBuildSchedulerByName(t *testing.T) {
	g := graphFor(t, topo.Figure7(), true, true)
	for _, name := range SchedulerNames() {
		s, err := BuildScheduler(name, g)
		if err != nil {
			t.Fatalf("BuildScheduler(%q): %v", name, err)
		}
		// Every policy must build a working scheduler: one saturated slot.
		slot := s.NextSlot(func(int) int { return 1 })
		if len(slot) == 0 {
			t.Errorf("%s: saturated network produced empty slot", name)
		}
		for a := 0; a < len(slot); a++ {
			for b := a + 1; b < len(slot); b++ {
				if g.Conflicts(slot[a], slot[b]) {
					t.Errorf("%s: slot %v conflicts", name, slot)
				}
			}
		}
	}
}

func TestBuildSchedulerUnknown(t *testing.T) {
	g := graphFor(t, topo.Figure7(), true, false)
	_, err := BuildScheduler("nope", g)
	if err == nil {
		t.Fatal("BuildScheduler(nope) succeeded")
	}
	if !strings.Contains(err.Error(), "RAND") {
		t.Errorf("error %q should list registered names", err)
	}
}

func TestRegisterSchedulerConflictsAndUnregister(t *testing.T) {
	d := SchedulerDescriptor{
		Name:    "Toy",
		Aliases: []string{"toy2"},
		Build:   func(g *topo.ConflictGraph, _ any) (Scheduler, error) { return NewRAND(g), nil },
	}
	if err := RegisterScheduler(d); err != nil {
		t.Fatal(err)
	}
	defer UnregisterScheduler("Toy")
	if err := RegisterScheduler(SchedulerDescriptor{Name: "toy2", Build: d.Build}); err == nil {
		t.Error("duplicate alias registration succeeded")
	}
	if err := RegisterScheduler(SchedulerDescriptor{Name: "Toy3"}); err == nil {
		t.Error("registration without Build succeeded")
	}
	if err := RegisterScheduler(SchedulerDescriptor{}); err == nil {
		t.Error("registration with empty name succeeded")
	}
	UnregisterScheduler("Toy")
	if _, ok := LookupScheduler("toy2"); ok {
		t.Error("alias survived UnregisterScheduler")
	}
	for _, n := range SchedulerNames() {
		if n == "Toy" {
			t.Error("canonical name survived UnregisterScheduler")
		}
	}
}
