package strict

import (
	"testing"

	"repro/internal/topo"
)

func TestLQFPrefersLongQueues(t *testing.T) {
	g := graphFor(t, topo.Figure7(), true, false) // conflicts {0,1},{2,3}
	l := NewLQF(g)
	// Link 1 has the deepest queue: it must win its conflict pair.
	q := []int{2, 9, 3, 1}
	slot := l.NextSlot(func(id int) int { return q[id] })
	has := map[int]bool{}
	for _, id := range slot {
		has[id] = true
	}
	if !has[1] || has[0] {
		t.Errorf("slot %v should contain 1 (q=9) and not 0 (q=2)", slot)
	}
	if !has[2] || has[3] {
		t.Errorf("slot %v should contain 2 (q=3) over 3 (q=1)", slot)
	}
	if s := l.NextSlot(func(int) int { return 0 }); s != nil {
		t.Errorf("idle slot = %v", s)
	}
}

func TestLQFSlotIndependence(t *testing.T) {
	g := graphFor(t, topo.Figure7(), true, true)
	l := NewLQF(g)
	slot := l.NextSlot(func(id int) int { return id + 1 })
	for a := 0; a < len(slot); a++ {
		for b := a + 1; b < len(slot); b++ {
			if g.Conflicts(slot[a], slot[b]) {
				t.Fatalf("slot %v conflicts", slot)
			}
		}
	}
	if len(slot) == 0 {
		t.Fatal("no slot built")
	}
}

func TestLQFBatchConservation(t *testing.T) {
	g := graphFor(t, topo.Figure7(), true, false)
	l := NewLQF(g)
	est := []int{3, 2, 0, 5}
	batch := l.Batch(est, 20)
	got := make([]int, 4)
	for _, slot := range batch {
		for _, id := range slot {
			got[id]++
		}
	}
	for id := range est {
		if got[id] != est[id] {
			t.Errorf("link %d scheduled %d, want %d", id, got[id], est[id])
		}
	}
	if est[3] != 5 {
		t.Error("Batch mutated its argument")
	}
}

// Both schedulers satisfy the Scheduler interface.
var _ Scheduler = (*RAND)(nil)
var _ Scheduler = (*LQF)(nil)
