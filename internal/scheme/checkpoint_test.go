package scheme

import "testing"

func TestEngineStateDigest(t *testing.T) {
	a := EngineState{Scheme: "X", Counters: map[string]int64{"slots": 3, "drops": 1}}
	b := EngineState{Scheme: "X", Counters: map[string]int64{"drops": 1, "slots": 3}}
	if a.Digest() != b.Digest() {
		t.Fatal("digest depends on map iteration order")
	}
	if !a.Equal(b) {
		t.Fatal("Equal rejected identical states")
	}
	c := EngineState{Scheme: "X", Counters: map[string]int64{"drops": 2, "slots": 3}}
	if a.Digest() == c.Digest() || a.Equal(c) {
		t.Fatal("digest/Equal missed a counter change")
	}
	d := EngineState{Scheme: "Y", Counters: map[string]int64{"drops": 1, "slots": 3}}
	if a.Digest() == d.Digest() {
		t.Fatal("digest ignores the scheme name")
	}
	// Key/value boundary confusion must not collide: {"a":1,"b":2} vs {"a:1b": 2}-style.
	e := EngineState{Scheme: "X", Counters: map[string]int64{"slots": 1, "drops": 3}}
	if a.Digest() == e.Digest() {
		t.Fatal("digest collided on swapped values")
	}
}

func TestCheckpointEngineWithoutHook(t *testing.T) {
	d := &Descriptor{Name: "bare"}
	s, ok := CheckpointEngine(d, nil)
	if ok {
		t.Fatal("ok=true without a Checkpointer")
	}
	if s.Scheme != "bare" {
		t.Fatalf("scheme = %q, want bare", s.Scheme)
	}
}
