package scheme

import (
	"hash/fnv"
	"sort"

	"repro/internal/mac"
)

// EngineState is a serializable digest of a scheme engine's mutable state,
// captured by the scheme's registered Checkpointer at a checkpoint boundary.
// Engines hold pointers, queues and armed timers that cannot round-trip
// through bytes, so restore is replay-based; the state exists to *audit* the
// replay — a restored engine whose EngineState matches the checkpoint has
// provably reconverged on every counter the scheme considers identity-
// defining — and to surface scheme progress in run status reports without
// reaching into engine internals.
type EngineState struct {
	// Scheme is the canonical registered name that produced the state.
	Scheme string `json:"scheme"`
	// Counters are the scheme's identity-defining tallies (slots scheduled,
	// data sends, drops, …). Keys are scheme-chosen; equal maps mean equal
	// progress.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Digest folds the state into one comparable word (FNV-1a over the scheme
// name and the counters in sorted key order).
func (s EngineState) Digest() uint64 {
	h := fnv.New64a()
	h.Write([]byte(s.Scheme))
	keys := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b [8]byte
	for _, k := range keys {
		h.Write([]byte{0})
		h.Write([]byte(k))
		v := uint64(s.Counters[k])
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

// Equal reports whether two states describe identical scheme progress.
func (s EngineState) Equal(o EngineState) bool {
	if s.Scheme != o.Scheme || len(s.Counters) != len(o.Counters) {
		return false
	}
	for k, v := range s.Counters {
		ov, ok := o.Counters[k]
		if !ok || ov != v {
			return false
		}
	}
	return true
}

// CheckpointEngine captures engine state through the descriptor's registered
// Checkpointer. Schemes without one get a name-only state (the kernel and
// metrics audits still cover them); ok reports whether a Checkpointer ran.
func CheckpointEngine(d *Descriptor, e mac.Engine) (EngineState, bool) {
	if d == nil {
		return EngineState{}, false
	}
	if d.Checkpointer == nil {
		return EngineState{Scheme: d.Name}, false
	}
	s := d.Checkpointer(e)
	if s.Scheme == "" {
		s.Scheme = d.Name
	}
	return s, true
}
