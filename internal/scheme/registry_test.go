package scheme

import (
	"strings"
	"testing"

	"repro/internal/mac"
)

func stubDescriptor(name string, aliases ...string) Descriptor {
	return Descriptor{
		Name:          name,
		Aliases:       aliases,
		DefaultConfig: func(p Params) any { return &struct{}{} },
		Build:         func(ctx BuildContext, cfg any) (mac.Engine, error) { return nil, nil },
	}
}

func TestRegisterLookupUnregister(t *testing.T) {
	if err := Register(stubDescriptor("TestScheme", "ts")); err != nil {
		t.Fatal(err)
	}
	defer Unregister("TestScheme")

	for _, name := range []string{"TestScheme", "testscheme", "TESTSCHEME", "ts", "TS"} {
		d, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missed", name)
		}
		if d.Name != "TestScheme" {
			t.Fatalf("Lookup(%q) resolved %q", name, d.Name)
		}
	}
	found := false
	for _, n := range Names() {
		if n == "TestScheme" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() = %v, missing TestScheme", Names())
	}

	Unregister("TestScheme")
	if _, ok := Lookup("ts"); ok {
		t.Fatal("alias survived Unregister")
	}
	if _, ok := Lookup("TestScheme"); ok {
		t.Fatal("name survived Unregister")
	}
	Unregister("TestScheme") // unknown names are a no-op
}

func TestRegisterRejectsBadDescriptors(t *testing.T) {
	if err := Register(Descriptor{}); err == nil {
		t.Error("empty Name accepted")
	}
	if err := Register(Descriptor{Name: "NoFuncs"}); err == nil {
		t.Error("missing DefaultConfig/Build accepted")
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	if err := Register(stubDescriptor("DupBase", "dup-alias")); err != nil {
		t.Fatal(err)
	}
	defer Unregister("DupBase")

	// Same canonical name, different case.
	if err := Register(stubDescriptor("dupbase")); err == nil {
		t.Error("case-variant duplicate accepted")
		Unregister("dupbase")
	}
	// A new name whose alias collides with an existing alias.
	if err := Register(stubDescriptor("DupOther", "DUP-ALIAS")); err == nil {
		t.Error("alias collision accepted")
		Unregister("DupOther")
	} else if !strings.Contains(err.Error(), "DupBase") {
		t.Errorf("collision error should name the prior owner: %v", err)
	}
	// A failed Register must not leave partial alias entries behind.
	if _, ok := Lookup("DupOther"); ok {
		t.Error("failed Register leaked the canonical name")
	}
}

func TestBuiltinSchemesRegistered(t *testing.T) {
	// The engine packages register at init; this package does not import
	// them, so only assert when they are present (the e2e test below pulls
	// them in via core).
	for _, n := range Names() {
		if d, ok := Lookup(n); !ok || d.Name != n {
			t.Errorf("Names() entry %q does not Lookup to itself", n)
		}
	}
}
