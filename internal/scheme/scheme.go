// Package scheme is the pluggable channel-access scheme registry. Each
// engine package self-describes with a Descriptor (name, default config,
// build function, conflict-graph requirement) and registers it at init time;
// the core run pipeline, the experiment drivers and the CLIs then construct
// engines purely by name, so adding a fifth scheme is one Register call —
// no edits to internal/core or the consumers.
package scheme

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Params carries the scheme-independent knobs a scenario applies to every
// engine's default config before the tuning hooks run.
type Params struct {
	// Rate is the PHY data rate for data frames.
	Rate phy.Rate
	// PacketBytes is the datagram/segment size the traffic layer offers;
	// schemes that size internal frames from it (DOMINO's virtual frames)
	// read it here.
	PacketBytes int
	// MisalignSlots arms a scheme's misalignment probe when supported
	// (DOMINO, Fig 11); zero disables.
	MisalignSlots int
}

// BuildContext is everything a scheme may wire an engine into: the event
// kernel, the shared medium, the topology and link set, the conflict graph
// (nil unless the Descriptor asked for one) and the MAC event fan-out.
type BuildContext struct {
	Kernel *sim.Kernel
	Medium *phy.Medium
	Net    *topo.Network
	Links  []*topo.Link
	// Graph is the link conflict graph; non-nil iff the scheme's Descriptor
	// set NeedsConflictGraph.
	Graph  *topo.ConflictGraph
	Events mac.Events
	Params Params
}

// Descriptor is one registered channel-access scheme.
type Descriptor struct {
	// Name is the canonical scheme name as printed in results ("DOMINO").
	// Lookup is case-insensitive, so CLI spellings need no aliases unless
	// they differ by more than case.
	Name string
	// Aliases are additional accepted names ("omni" for "Omniscient").
	Aliases []string
	// Summary is a one-line description for CLI listings.
	Summary string
	// NeedsConflictGraph asks the pipeline to compute the link conflict
	// graph before Build (DCF does not need one; polling schemes do).
	NeedsConflictGraph bool
	// DefaultConfig returns a pointer to a fresh config struct with the
	// generic Params already applied. Tuning hooks and declarative
	// scheme_config overrides mutate the returned value before Build.
	DefaultConfig func(p Params) any
	// Build constructs the engine. cfg is the (possibly tuned) value
	// DefaultConfig returned.
	Build func(ctx BuildContext, cfg any) (mac.Engine, error)
	// Checkpointer, when non-nil, captures the engine's identity-defining
	// counters as a serializable EngineState — the audit record replay-based
	// checkpoint restore (internal/run) verifies a restored engine against.
	// Optional: schemes without one are still checkpointable; their replay
	// is audited through the kernel queue and metrics states alone.
	Checkpointer func(e mac.Engine) EngineState
}

// Observable is implemented by engines that accept the observability layer.
// The run pipeline hands the engine the whole per-run obs.Run; the engine
// pulls what it uses — the Tracer for record emission, the Spans allocator
// for causal trees, the queue sampler, and the packet-lifecycle hooks
// (PacketQueued / PacketDequeued). Engines not implementing it simply run
// untraced.
type Observable interface {
	WireObs(run *obs.Run)
}

// MetricsObservable is implemented by engines that feed the per-run metrics
// registry (counters/gauges/histograms beyond what the generic probes see).
// The run pipeline wires it whenever the scenario carries a registry.
type MetricsObservable interface {
	WireMetrics(m *obs.Metrics)
}

var (
	mu       sync.RWMutex
	registry = map[string]*Descriptor{}
	// canonical lists registry keys of canonical names only, for Names().
	canonical []string
)

// Register adds a scheme to the registry. It fails on empty or duplicate
// names (aliases included) and on missing DefaultConfig/Build functions.
func Register(d Descriptor) error {
	if d.Name == "" {
		return fmt.Errorf("scheme: Register with empty Name")
	}
	if d.DefaultConfig == nil || d.Build == nil {
		return fmt.Errorf("scheme: %s: DefaultConfig and Build are required", d.Name)
	}
	mu.Lock()
	defer mu.Unlock()
	keys := append([]string{d.Name}, d.Aliases...)
	for _, k := range keys {
		if prev, ok := registry[strings.ToLower(k)]; ok {
			return fmt.Errorf("scheme: %q already registered (by %s)", k, prev.Name)
		}
	}
	desc := d
	for _, k := range keys {
		registry[strings.ToLower(k)] = &desc
	}
	canonical = append(canonical, d.Name)
	sort.Strings(canonical)
	return nil
}

// MustRegister is Register for init-time use; it panics on conflict.
func MustRegister(d Descriptor) {
	if err := Register(d); err != nil {
		panic(err)
	}
}

// Unregister removes a scheme and its aliases; tests use it to clean up toy
// registrations. Unknown names are a no-op.
func Unregister(name string) {
	mu.Lock()
	defer mu.Unlock()
	d, ok := registry[strings.ToLower(name)]
	if !ok {
		return
	}
	delete(registry, strings.ToLower(d.Name))
	for _, a := range d.Aliases {
		delete(registry, strings.ToLower(a))
	}
	for i, n := range canonical {
		if n == d.Name {
			canonical = append(canonical[:i], canonical[i+1:]...)
			break
		}
	}
}

// Lookup resolves a scheme name (canonical or alias, case-insensitive).
func Lookup(name string) (*Descriptor, bool) {
	mu.RLock()
	defer mu.RUnlock()
	d, ok := registry[strings.ToLower(name)]
	return d, ok
}

// Names returns the canonical registered names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	return append([]string(nil), canonical...)
}
