package scheme_test

// The registry's acceptance bar: a fifth scheme this repository has never
// heard of registers itself and runs end to end — through the declarative
// spec layer and core's registry pipeline — without one line of internal/core
// changing. The toy engine is a fixed-period TDMA server: every period it
// delivers one head-of-line packet, round-robin across links, straight to the
// MAC event fan-out (no medium contention), which is just enough MAC to drive
// the traffic and statistics layers.

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/mac"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/topo"
)

type toyConfig struct {
	// PeriodUs is the per-delivery service period in microseconds.
	PeriodUs int
}

type toyEngine struct {
	k      *sim.Kernel
	events mac.Events
	links  []*topo.Link
	queues [][]*mac.Packet
	period sim.Time
	next   int
}

func (e *toyEngine) Start() { e.k.After(e.period, e.tick) }

func (e *toyEngine) tick() {
	for i := 0; i < len(e.links); i++ {
		li := (e.next + i) % len(e.links)
		if len(e.queues[li]) > 0 {
			p := e.queues[li][0]
			e.queues[li] = e.queues[li][1:]
			e.next = li + 1
			e.events.Delivered(p, e.k.Now())
			break
		}
	}
	e.k.After(e.period, e.tick)
}

func (e *toyEngine) Enqueue(p *mac.Packet) {
	e.queues[p.Link.ID] = append(e.queues[p.Link.ID], p)
}

func (e *toyEngine) QueueLen(link int) int { return len(e.queues[link]) }

func registerToy(t *testing.T) {
	t.Helper()
	scheme.MustRegister(scheme.Descriptor{
		Name:    "ToyTDMA",
		Aliases: []string{"toy"},
		Summary: "fixed-period round-robin server (registry test)",
		DefaultConfig: func(p scheme.Params) any {
			return &toyConfig{PeriodUs: 500}
		},
		Build: func(ctx scheme.BuildContext, cfg any) (mac.Engine, error) {
			c := cfg.(*toyConfig)
			e := &toyEngine{
				k:      ctx.Kernel,
				events: ctx.Events,
				links:  ctx.Links,
				queues: make([][]*mac.Packet, len(ctx.Links)),
				period: sim.Micros(float64(c.PeriodUs)),
			}
			return e, nil
		},
	})
	t.Cleanup(func() { scheme.Unregister("ToyTDMA") })
}

func TestToySchemeRunsThroughSpec(t *testing.T) {
	registerToy(t)

	sp := spec.Spec{
		Scheme:       "toytdma", // case-insensitive registry lookup
		Topology:     spec.Topology{Kind: "fig1"},
		Seed:         1,
		Duration:     spec.Duration(200 * sim.Millisecond),
		SchemeConfig: json.RawMessage(`{"PeriodUs": 250}`),
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("spec naming the toy scheme failed validation: %v", err)
	}
	res, err := core.RunE(sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.AggregateMbps <= 0 {
		t.Fatalf("toy scheme delivered nothing: %.3f Mbps", res.AggregateMbps)
	}
	// One 512-byte delivery per 250 µs period is 16.384 Mbps; the first
	// period is empty, so accept a small shortfall.
	want := 16.384
	if res.AggregateMbps < want*0.9 || res.AggregateMbps > want*1.1 {
		t.Errorf("toy TDMA throughput %.3f Mbps, want ≈%.3f (scheme_config period override not applied?)",
			res.AggregateMbps, want)
	}
	// No typed result fields belong to the toy scheme.
	if res.Domino != nil || res.Dcf != nil || res.Centaur != nil || res.Omni != nil {
		t.Error("toy scheme populated a built-in engine's result field")
	}
}

func TestToySchemeAliasAndProgrammaticRun(t *testing.T) {
	registerToy(t)

	net := topo.Figure1()
	res, err := core.RunScenario(core.Scenario{
		Net:        net,
		Links:      topo.Figure1Links(net),
		SchemeName: "toy", // alias
		Seed:       2,
		Duration:   100 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AggregateMbps <= 0 {
		t.Fatalf("alias run delivered nothing: %.3f Mbps", res.AggregateMbps)
	}
}

func TestUnknownSchemeNameErrors(t *testing.T) {
	_, err := core.RunScenario(core.Scenario{
		Net:        topo.Figure1(),
		SchemeName: "no-such-scheme",
		Downlink:   true,
		Duration:   10 * sim.Millisecond,
	})
	if err == nil {
		t.Fatal("unknown scheme name did not error")
	}
}
