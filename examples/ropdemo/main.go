// Ropdemo walks through Rapid OFDM Polling at the sample level: one control
// symbol in which every client reports its queue simultaneously, the
// inter-subchannel leakage a strong neighbour causes, and the guard-subcarrier
// sweep of paper Fig 6.
//
//	go run ./examples/ropdemo
package main

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/ofdm"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	l := ofdm.DefaultLayout()

	fmt.Printf("ROP control symbol: %d subcarriers, %d subchannels × %d bits, %d guard\n",
		l.N, l.NumSubchannels(), l.PerSub, l.Guard)
	fmt.Printf("symbol duration %.0f µs (CP %.1f µs)\n\n",
		l.SymbolDurationUs(), float64(l.CPLen)/ofdm.SampleRate*1e6)

	// One polling round: every one of the 24 clients reports a queue size in
	// a single 16 µs symbol.
	var clients []ofdm.Client
	var queues []int
	for s := 0; s < l.NumSubchannels(); s++ {
		clients = append(clients, ofdm.Client{Subchannel: s, CFOHz: (rng.Float64()*2 - 1) * 550})
		queues = append(queues, rng.Intn(64))
	}
	res := ofdm.Poll(l, clients, queues, 1e-3, rng)
	okAll := true
	for i, ok := range res.OK {
		if !ok {
			okAll = false
			fmt.Printf("client %d FAILED: sent %d got %d\n", i, queues[i], res.Values[i])
		}
	}
	fmt.Printf("all 24 clients decoded in one symbol: %v\n\n", okAll)

	// The Fig 5 story: a 30 dB stronger neighbour leaks into the weak
	// client's subchannel without guards, and is contained with 3.
	show := func(name string, guard int) {
		ly := ofdm.DefaultLayout()
		ly.Guard = guard
		cs := []ofdm.Client{
			{Subchannel: 0, GainDB: 30, CFOHz: 1200},
			{Subchannel: 1, GainDB: 0, CFOHz: -400},
		}
		pr := ofdm.Poll(ly, cs, []int{0b111111, 0b010101}, 1e-3, rng)
		weak := ly.SubcarrierIndices(1)
		fmt.Printf("%s: weak client decode ok = %v, weak-band |Y|:", name, pr.OK[1])
		for _, bin := range weak {
			fmt.Printf(" %.2f", pr.Spectrum[bin])
		}
		fmt.Println()
	}
	show("no guards (Fig 5b)", 0)
	show("3 guards  (Fig 5c)", 3)
	fmt.Println()

	// Fig 6: decode ratio vs RSS difference per guard count.
	diffs := []float64{20, 30, 34, 38, 42}
	fmt.Printf("decode ratio (%%) vs RSS difference:\n%8s", "")
	for _, d := range diffs {
		fmt.Printf("%7.0fdB", d)
	}
	fmt.Println()
	for g := 0; g <= 4; g++ {
		ly := ofdm.DefaultLayout()
		ly.Guard = g
		row := []string{}
		for _, d := range diffs {
			r := ofdm.DecodeRatio(ly, d, ofdm.DefaultCFOMaxHz, 1e-3, 200, rng)
			row = append(row, fmt.Sprintf("%8.0f%%", r*100))
		}
		fmt.Printf("guard=%d %s\n", g, strings.Join(row, " "))
	}
	fmt.Println("\n3 guard subcarriers hold to the trace's 38 dB worst case (paper §3.1).")
}
