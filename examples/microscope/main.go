// Microscope puts DOMINO "under the microscope" (paper §3.4, Fig 10): it runs
// the four-pair Fig 7 network with every flow saturated and prints the
// per-slot timeline — self-starts, data and fake transmissions, signature
// broadcasts, triggers and polls — showing the wired-jitter misalignment of
// slot 0 healing within a few slots.
//
//	go run ./examples/microscope [-events 80]
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/domino"
	"repro/internal/sim"
	"repro/internal/topo"
)

func main() {
	maxEvents := flag.Int("events", 80, "number of timeline events to print")
	flag.Parse()

	fmt.Println("Fig 7 network: chains {AP1,AP2} and {AP3,AP4}; AP3/AP4 hidden;")
	fmt.Println("all eight links saturated. Timeline of the first slots:")
	fmt.Println()

	n := 0
	res := core.Run(core.Scenario{
		Net:           topo.Figure7(),
		Downlink:      true,
		Uplink:        true,
		Scheme:        core.DOMINO,
		Traffic:       core.Saturated,
		Duration:      2 * sim.Second,
		Seed:          6,
		MisalignSlots: 8,
		Trace: func(ev domino.TraceEvent) {
			if n >= *maxEvents {
				return
			}
			n++
			link := ""
			if ev.Link != nil {
				link = ev.Link.String()
			}
			fmt.Printf("%12v  slot %-3d  %-9s node %-2d  %s\n", ev.At, ev.Slot, ev.Kind, ev.Node, link)
		},
	})

	fmt.Println()
	fmt.Println("misalignment at slot starts (paper Fig 11's metric):")
	for s := 0; s < 8; s++ {
		fmt.Printf("  slot %d: %v\n", s, res.Misalign.Max(s))
	}
	fmt.Printf("\n2 s totals: %d data, %d fake, %d polls, %d ACK misses, %d self-starts\n",
		res.Domino.DataSends, res.Domino.FakeSends, res.Domino.Polls,
		res.Domino.AckMisses, res.Domino.SelfStarts)
	fmt.Printf("aggregate %.2f Mbps, fairness %.3f\n", res.AggregateMbps, res.Fairness)
}
