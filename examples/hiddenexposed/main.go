// Hiddenexposed reproduces the paper's motivating example (Figs 1 and 2): a
// three-pair network where AP1 and AP3 are hidden terminals and C2/AP1 are
// exposed, run under all four channel-access schemes.
//
//	go run ./examples/hiddenexposed
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
)

func main() {
	fmt.Println("The Fig 1 network: AP1→C1 and AP3→C3 are hidden from each other;")
	fmt.Println("C2→AP2 is exposed to AP1 and could always transmit concurrently.")
	fmt.Println()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\tAP1→C1\tC2→AP2\tAP3→C3\toverall\t")
	for _, scheme := range []core.Scheme{core.DCF, core.CENTAUR, core.DOMINO, core.Omniscient} {
		net := topo.Figure1()
		res := core.Run(core.Scenario{
			Net:      net,
			Links:    topo.Figure1Links(net),
			Scheme:   scheme,
			Traffic:  core.Saturated,
			Duration: 10 * sim.Second,
			Warmup:   sim.Second,
			Seed:     1,
		})
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\t%.2f\t\n",
			scheme, res.PerLinkMbps[0], res.PerLinkMbps[1], res.PerLinkMbps[2], res.AggregateMbps)
	}
	w.Flush()

	fmt.Println()
	fmt.Println("Expected shape (paper Fig 2): DCF starves the hidden AP3→C3 and")
	fmt.Println("serialises the exposed C2; the omniscient scheduler runs C2 in every")
	fmt.Println("slot while AP1/AP3 alternate; DOMINO lands close to omniscient with")
	fmt.Println("no synchronization, using signature triggers instead.")
}
