// Coexistence demonstrates the §5 CFP/CoP split (paper Fig 15): a DOMINO
// cell shares one collision domain with an external, un-schedulable DCF
// pair. During the contention-free period DOMINO's frames carry a NAV to the
// CFP end, so the external sender defers; the contention period after each
// batch hands it the channel.
//
//	go run ./examples/coexistence
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/exp"
	"repro/internal/sim"
)

func main() {
	fmt.Println("One collision domain: a DOMINO AP-client cell plus an external")
	fmt.Println("802.11 DCF pair that the central server cannot schedule.")
	fmt.Println()

	res := exp.Coexist(exp.Options{
		Seed:     1,
		Duration: 4 * sim.Second,
		Warmup:   500 * sim.Millisecond,
	})

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "CoP per batch\tDOMINO (Mbps)\texternal DCF (Mbps)\t")
	for i, cop := range res.CoPMs {
		fmt.Fprintf(w, "%.0f ms\t%.2f\t%.2f\t\n", cop, res.DominoMbps[i], res.ExternalMbps[i])
	}
	w.Flush()

	fmt.Println()
	fmt.Println("With no contention period the NAV-protected trigger chain starves")
	fmt.Println("the external sender; widening the CoP trades DOMINO throughput for")
	fmt.Println("a fair external share, exactly the server-tunable split of Fig 15.")
}
