// Enterprise simulates the paper's default large-scale setting: a T(10,2)
// enterprise WLAN selected from the synthetic two-building campus trace,
// carrying 10 Mbps downlink UDP per link plus a configurable uplink load,
// under DCF, CENTAUR and DOMINO.
//
//	go run ./examples/enterprise [-up 4] [-duration 10s]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topo"
)

func main() {
	up := flag.Float64("up", 4, "uplink offered Mbps per link")
	duration := flag.Duration("duration", 8*time.Second, "simulated time")
	seed := flag.Int64("seed", 1, "seed for trace, topology and simulation")
	flag.Parse()

	build := func() *topo.Network {
		tr := topo.CampusTrace(*seed)
		rng := rand.New(rand.NewSource(*seed))
		net, err := topo.BuildT(tr, 10, 2, phy.DefaultConfig(), phy.Rate12, rng)
		if err != nil {
			panic(err)
		}
		return net
	}

	// Report the topology's interference statistics, the quantities the
	// paper quotes for its T(10,2) (§4.2.3).
	net := build()
	g := topo.NewConflictGraph(net, net.BuildLinks(true, true), phy.DefaultConfig(), phy.Rate12)
	h, e, total := g.CountHiddenExposed()
	fmt.Printf("T(10,2) from the campus trace: %d nodes, %d links\n", net.NumNodes(), len(g.Links))
	fmt.Printf("interference structure: %d hidden pairs, %d exposed pairs of %d\n\n", h, e, total)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\tthroughput (Mbps)\tmean delay\tJain fairness\t")
	for _, scheme := range []core.Scheme{core.DCF, core.CENTAUR, core.DOMINO} {
		res := core.Run(core.Scenario{
			Net:      build(),
			Downlink: true,
			Uplink:   true,
			Scheme:   scheme,
			Traffic:  core.UDPCBR,
			DownMbps: 10,
			UpMbps:   *up,
			Duration: sim.Time(duration.Nanoseconds()),
			Warmup:   500 * sim.Millisecond,
			Seed:     *seed,
		})
		fmt.Fprintf(w, "%s\t%.2f\t%v\t%.3f\t\n",
			scheme, res.DataMbps, res.MeanDelay, res.Fairness)
	}
	w.Flush()
	fmt.Println("\n(downlink 10 Mbps/link fixed; vary -up to sweep Fig 12's x-axis)")
}
