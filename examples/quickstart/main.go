// Quickstart: simulate two hidden AP-client pairs under plain 802.11 DCF and
// under DOMINO's relative scheduling, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
)

func main() {
	// Two AP-client pairs placed as hidden terminals: the senders cannot
	// carrier-sense each other, but each corrupts the other's receiver.
	for _, scheme := range []core.Scheme{core.DCF, core.DOMINO} {
		res := core.Run(core.Scenario{
			Net:      topo.TwoPairs(topo.HiddenTerminals),
			Downlink: true,
			Scheme:   scheme,
			Traffic:  core.Saturated,
			Duration: 5 * sim.Second,
			Warmup:   500 * sim.Millisecond,
			Seed:     42,
		})
		fmt.Printf("%-8s aggregate %5.2f Mbps, fairness %.2f", scheme, res.AggregateMbps, res.Fairness)
		for _, l := range res.Links {
			fmt.Printf("   %s %.2f", l, res.PerLinkMbps[l.ID])
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("DCF's senders collide blindly at the receivers; DOMINO's central")
	fmt.Println("schedule alternates the links and triggers each slot with Gold-code")
	fmt.Println("signatures, so no synchronization — and no collisions — are needed.")
}
