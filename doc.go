// Package repro is a from-scratch Go reproduction of "DOMINO: Relative
// Scheduling in Enterprise Wireless LANs" (Zhou, Li, Srinivasan, Sinha;
// CoNEXT 2013).
//
// The library implements the paper's full stack: a deterministic
// discrete-event radio simulator (internal/sim, internal/phy), enterprise
// topologies and conflict graphs (internal/topo), Gold-code signature
// triggering (internal/gold), the Rapid OFDM Polling PHY (internal/ofdm,
// internal/rop), the strict/RAND scheduler and its omniscient executor
// (internal/strict), the relative-schedule converter (internal/convert), the
// DOMINO engine itself (internal/domino), and the DCF and CENTAUR baselines
// (internal/dcf, internal/centaur). internal/core assembles complete
// scenarios, and internal/exp regenerates every table and figure of the
// paper's evaluation; see cmd/experiments and the examples directory.
//
// The benchmarks in this package (bench_test.go) are the per-table/figure
// regeneration harness: `go test -bench=. -benchmem` re-derives the headline
// numbers and reports them as benchmark metrics.
package repro
