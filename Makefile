# Repo verification and perf-tracking targets. `make ci` is the gate every
# change must pass; the race target is the correctness backstop for the
# parallel experiment harness (internal/parallel and everything fanned out
# through it).

GO ?= go

.PHONY: ci vet build test race bench bench-obs benchreport benchreport-obs

ci: vet build test race bench-obs

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Full benchmark sweep (one iteration per table/figure; laptop-minutes).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Observability hot-path benchmarks: the kernel event loop with/without an
# OnEvent hook and the correlator with/without a tracer. Runs as part of ci
# at a short benchtime — the point there is the allocs/op columns (the
# disabled paths must stay at their no-observability counts), not stable
# timings.
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkKernel' -benchmem -benchtime=1000x ./internal/sim
	$(GO) test -run '^$$' -bench 'BenchmarkMetric' -benchmem -benchtime=1000x ./internal/gold

# Refresh BENCH_parallel.json: harness speedup + correlator hot-path numbers.
benchreport:
	$(GO) run ./cmd/benchreport

# Refresh BENCH_obs.json: tracing-disabled vs -enabled cost on the kernel and
# correlator hot paths, gated against a same-run control (-strict makes a >2%
# disabled-path regression fail the run).
benchreport-obs:
	$(GO) run ./cmd/benchreport -obs
