# Repo verification and perf-tracking targets. `make ci` is the gate every
# change must pass; the race target is the correctness backstop for the
# parallel experiment harness (internal/parallel and everything fanned out
# through it).

GO ?= go

.PHONY: ci vet build test race bench benchreport

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Full benchmark sweep (one iteration per table/figure; laptop-minutes).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Refresh BENCH_parallel.json: harness speedup + correlator hot-path numbers.
benchreport:
	$(GO) run ./cmd/benchreport
