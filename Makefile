# Repo verification and perf-tracking targets. `make ci` is the gate every
# change must pass; the race target is the correctness backstop for the
# parallel experiment harness (internal/parallel and everything fanned out
# through it).

GO ?= go

.PHONY: ci vet fmt specs build test race race-hot race-shard race-serve bench bench-obs bench-kernel bench-convert bench-shard bench-poll benchreport benchreport-obs benchreport-kernel benchreport-convert benchreport-shard benchreport-poll

ci: vet fmt build test specs race race-hot race-shard race-serve bench-obs bench-kernel bench-convert bench-shard bench-poll

vet:
	$(GO) vet ./...

# gofmt gate: fails listing the unformatted files, fixes nothing.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Validate every example scenario spec (shape, scheme, topology, traffic).
specs:
	$(GO) run ./cmd/speclint examples/specs/*.json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Race re-run of the hot-path packages this PR rewrote: the pooled kernel,
# the planned FFT (shared immutable plans across goroutines) and the obs
# layer. Focused and fast enough to run on every change even when the full
# race sweep would be skipped.
race-hot:
	$(GO) test -race -count=1 ./internal/sim ./internal/ofdm ./internal/obs

# Race re-run of the sharded-runner stack: the shard package (per-domain
# goroutines, cross-shard mailboxes), the kernel it drives, and the ForEach
# fan-out underneath. The shard tests cover single-domain transparency,
# multi-domain differentials and worker-count determinism, so -race here
# checks every cross-goroutine edge the sharded runner adds.
race-shard:
	$(GO) test -race -count=1 ./internal/shard ./internal/sim ./internal/parallel

# Race re-run of the run-lifecycle stack: the daemon (worker fleet, HTTP
# handlers, trace streaming, pause/cancel control racing the step loop), the
# checkpoint/restore property tests underneath it, and the dynamic pool. This
# is the domino-simd smoke: every daemon test drives the real HTTP API.
race-serve:
	$(GO) test -race -count=1 ./internal/run ./internal/parallel

# Full benchmark sweep (one iteration per table/figure; laptop-minutes).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Observability hot-path benchmarks: the kernel event loop with/without an
# OnEvent hook and the correlator with/without a tracer. Runs as part of ci
# at a short benchtime — the point there is the allocs/op columns (the
# disabled paths must stay at their no-observability counts), not stable
# timings.
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkKernel' -benchmem -benchtime=1000x ./internal/sim
	$(GO) test -run '^$$' -bench 'BenchmarkMetric' -benchmem -benchtime=1000x ./internal/gold
	$(GO) run ./cmd/benchreport -obs -max-hist-ns 200 -out /tmp/BENCH_obs_ci.json

# Event-kernel + ROP FFT gate at a quick configuration: exits non-zero when
# any pooled hot path (kernel At/After/fire, planned FFT256, poll round)
# allocates in steady state. The committed BENCH_kernel.json comes from
# benchreport-kernel below, not from this target.
bench-kernel:
	$(GO) run ./cmd/benchreport -kernel -runs 2 -duration 500ms -out /tmp/BENCH_kernel_ci.json

# Conversion gate at a quick configuration: every placement runs in all four
# {cache, incremental} on/off modes and the run exits non-zero unless the
# four traces are byte-identical. Two perf gates ride along: the steady-state
# cache hit rate (fig7 saturated, cold start excluded — deterministic) must
# stay ≥ 70%, and full-mode ns/batch must stay within a generous budget (the
# shared runner's wall-clock jitter is ±40%, so the budget only catches
# multiple-x regressions; BENCH_convert.json tracks the precise number). The
# committed BENCH_convert.json comes from benchreport-convert below, not from
# this target.
bench-convert:
	$(GO) run ./cmd/benchreport -convert -runs 2 -duration 1s -min-steady-hit 70 -max-convert-ns 600000 -out /tmp/BENCH_convert_ci.json

# Sharded-runner gate at a quick configuration (240-AP campus, 50ms): the
# sweep runs the same scenario at 1/2/4/8 workers and exits non-zero unless
# every point's merged-output hash is identical (the determinism contract —
# always enforced). The -min-speedup 3 gate on the 4-worker point only
# applies on hosts with >=4 CPUs; on smaller machines benchreport prints a
# loud warning and skips it, since no worker count can beat serial there.
# The committed BENCH_shard.json comes from benchreport-shard below.
bench-shard:
	$(GO) run ./cmd/benchreport -shard -shard-buildings 12 -shard-duration 50ms -min-speedup 3 -out /tmp/BENCH_shard_ci.json

# Poller-registry gate: every registered poller's Assign and Poll cycle are
# micro-benchmarked (the point in ci is the allocs column and that every
# poller builds and completes a cycle), and rop.DecodeInto must stay at zero
# allocations with warm scratch — the registry seam is not allowed to put
# allocations on the paper's per-poll hot path. The committed BENCH_poll.json
# comes from benchreport-poll below, not from this target.
bench-poll:
	$(GO) run ./cmd/benchreport -poll -out /tmp/BENCH_poll_ci.json

# Refresh BENCH_parallel.json: harness speedup + correlator hot-path numbers.
benchreport:
	$(GO) run ./cmd/benchreport

# Refresh BENCH_obs.json: tracing-disabled vs -enabled cost on the kernel and
# correlator hot paths, gated against a same-run control (-strict makes a >2%
# disabled-path regression fail the run).
benchreport-obs:
	$(GO) run ./cmd/benchreport -obs

# Refresh BENCH_kernel.json at the same workload BENCH_parallel.json records
# (16 runs x 2s), so fig14_improvement_pct compares like for like.
benchreport-kernel:
	$(GO) run ./cmd/benchreport -kernel

# Refresh BENCH_convert.json: per-pass conversion ns/batch in all four
# {cache, incremental} modes plus the steady-state hit-rate probe, on the
# 16-placement x 2s Fig 14 workload.
benchreport-convert:
	$(GO) run ./cmd/benchreport -convert

# Refresh BENCH_shard.json: the 1,000-AP grid-campus sweep at 1/2/4/8
# workers with per-point wall clock and output hashes.
benchreport-shard:
	$(GO) run ./cmd/benchreport -shard -min-speedup 3

# Refresh BENCH_poll.json: per-poller assign/decode ns plus the DecodeInto
# zero-alloc gate.
benchreport-poll:
	$(GO) run ./cmd/benchreport -poll
