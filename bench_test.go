package repro

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates (a scaled-down version of) its experiment per iteration and
// reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// re-derives the numbers EXPERIMENTS.md records. The cmd/experiments binary
// runs the same drivers at full paper scale.

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/domino"
	"repro/internal/exp"
	"repro/internal/gold"
	"repro/internal/ofdm"
	"repro/internal/sim"
	"repro/internal/strict"
	"repro/internal/topo"
)

// benchOpts shrinks runs so a full -bench=. pass stays in laptop territory.
func benchOpts(seed int64) exp.Options {
	return exp.Options{
		Seed:     seed,
		Duration: 2 * sim.Second,
		Warmup:   300 * sim.Millisecond,
		Runs:     4,
		Trials:   100,
	}
}

// mustT10x2 builds the default campus topology or aborts the benchmark.
func mustT10x2(tb testing.TB, seed int64) *topo.Network {
	tb.Helper()
	net, err := exp.T10x2(seed)
	if err != nil {
		tb.Fatal(err)
	}
	return net
}

// BenchmarkFig2 regenerates the motivating comparison (Fig 2) and reports
// the omniscient-over-DCF and DOMINO-over-DCF throughput ratios (paper: 1.76x
// and close-to-omniscient).
func BenchmarkFig2(b *testing.B) {
	var omniGain, dominoGain float64
	for i := 0; i < b.N; i++ {
		r := exp.Fig2(benchOpts(int64(i + 1)))
		omniGain = r.Overall[core.Omniscient] / r.Overall[core.DCF]
		dominoGain = r.Overall[core.DOMINO] / r.Overall[core.DCF]
	}
	b.ReportMetric(omniGain, "omni/dcf")
	b.ReportMetric(dominoGain, "domino/dcf")
}

// BenchmarkTable1 regenerates the ROP symbol parameters (Table 1) — a pure
// construction benchmark reporting the symbol duration.
func BenchmarkTable1(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		l := ofdm.DefaultLayout()
		if err := l.Validate(); err != nil {
			b.Fatal(err)
		}
		us = l.SymbolDurationUs()
	}
	b.ReportMetric(us, "symbol-µs")
}

// BenchmarkFig5 regenerates the three received-spectrum snapshots.
func BenchmarkFig5(b *testing.B) {
	ok := 0.0
	for i := 0; i < b.N; i++ {
		r := exp.Fig5(int64(i + 1))
		if r.StrongGuarded.OK[1] {
			ok = 1
		}
	}
	b.ReportMetric(ok, "guarded-decodes")
}

// BenchmarkFig6 regenerates the guard-subcarrier sweep and reports the
// 3-guard decode ratio at the 38 dB worst case (paper: ~1.0).
func BenchmarkFig6(b *testing.B) {
	var at38 float64
	for i := 0; i < b.N; i++ {
		r := exp.Fig6(benchOpts(int64(i + 1)))
		for j, d := range r.DiffsDB {
			if d == 38 {
				at38 = r.Ratio[3][j]
			}
		}
	}
	b.ReportMetric(at38, "ratio@38dB")
}

// BenchmarkSNRFloor regenerates the §3.1 SNR experiment, reporting the decode
// ratio at 4 dB (paper: reliable).
func BenchmarkSNRFloor(b *testing.B) {
	var at4 float64
	for i := 0; i < b.N; i++ {
		r := exp.SNRFloor(benchOpts(int64(i + 1)))
		for j, s := range r.SNRdB {
			if s == 4 {
				at4 = r.Ratio[j]
			}
		}
	}
	b.ReportMetric(at4, "ratio@4dB")
}

// BenchmarkFig9 regenerates the signature-detection experiment, reporting
// detection at 4 combined signatures (paper: ~100%) and the worst in-envelope
// false-positive rate (paper: <1%).
func BenchmarkFig9(b *testing.B) {
	var det4, fp float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig9(benchOpts(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		det4 = r.Detected[0][3] // 1-sender setup, combined = 4
		fp = r.MaxFP
	}
	b.ReportMetric(det4, "detect@4")
	b.ReportMetric(fp*100, "falsepos-%")
}

// BenchmarkFig10 regenerates the microscope timeline (engine event trace).
func BenchmarkFig10(b *testing.B) {
	var events float64
	for i := 0; i < b.N; i++ {
		o := benchOpts(int64(i + 1))
		o.Duration = 300 * sim.Millisecond
		events = float64(len(exp.Fig10(o, 1000)))
	}
	b.ReportMetric(events, "events")
}

// BenchmarkTable2 regenerates the USRP prototype comparison, reporting the
// hidden-terminal gain (paper: >3x).
func BenchmarkTable2(b *testing.B) {
	var htGain float64
	for i := 0; i < b.N; i++ {
		o := benchOpts(int64(i + 1))
		o.Duration = sim.Second // scaled ×10 inside for the slow USRP PHY
		r := exp.Table2(o)
		htGain = r.Domino[1] / r.DCF[1]
	}
	b.ReportMetric(htGain, "HT-gain")
}

// BenchmarkFig11 regenerates the misalignment convergence, reporting the
// worst slot-5 residual in µs across jitter settings (paper: 1-2 µs).
func BenchmarkFig11(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		o := benchOpts(int64(i + 1))
		o.Duration = sim.Second
		r, err := exp.Fig11(o)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, row := range r.MaxUs {
			if v := row[len(row)-1]; v > worst {
				worst = v
			}
		}
	}
	b.ReportMetric(worst, "slot5-µs")
}

// BenchmarkFig12UDP regenerates the UDP sweep, reporting DOMINO's gain over
// DCF at zero uplink (paper: 1.74x) and the fairness gap at full uplink.
func BenchmarkFig12UDP(b *testing.B) {
	var gain0, fairGap float64
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig12(benchOpts(int64(i+1)), core.UDPCBR)
		if err != nil {
			b.Fatal(err)
		}
		gain0 = r.ThroughputMbps[0][0] / r.ThroughputMbps[2][0]
		last := len(r.UpMbps) - 1
		fairGap = r.Fairness[0][last] - r.Fairness[2][last]
	}
	b.ReportMetric(gain0, "gain@up0")
	b.ReportMetric(fairGap, "fairness-gap")
}

// BenchmarkFig12TCP regenerates the TCP sweep, reporting DOMINO's
// throughput gain over DCF at zero uplink (paper: 1.10-1.15x).
func BenchmarkFig12TCP(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		o := benchOpts(int64(i + 1))
		o.Duration = 4 * sim.Second // TCP needs window growth time
		r, err := exp.Fig12(o, core.TCP)
		if err != nil {
			b.Fatal(err)
		}
		gain = r.ThroughputMbps[0][0] / r.ThroughputMbps[2][0]
	}
	b.ReportMetric(gain, "gain@up0")
}

// BenchmarkTable3 regenerates the Fig 13 topologies, reporting CENTAUR's
// collapse ratio on 13(b) vs 13(a) (paper: 18.35/28.60 = 0.64) and DOMINO's
// stability (paper: 33.85/32.72 = 1.03).
func BenchmarkTable3(b *testing.B) {
	var centaurDrop, dominoHold float64
	for i := 0; i < b.N; i++ {
		r := exp.Table3(benchOpts(int64(i + 1)))
		centaurDrop = r.Mbps[1][1] / r.Mbps[0][1]
		dominoHold = r.Mbps[1][0] / r.Mbps[0][0]
	}
	b.ReportMetric(centaurDrop, "centaur-13b/13a")
	b.ReportMetric(dominoHold, "domino-13b/13a")
}

// BenchmarkFig14 regenerates the random-topology gain CDF, reporting the
// median DOMINO/DCF gain (paper: 1.58x, range 1.22-1.96).
func BenchmarkFig14(b *testing.B) {
	var median float64
	for i := 0; i < b.N; i++ {
		o := benchOpts(int64(i + 1))
		o.Runs = 3
		r, err := exp.Fig14(o)
		if err != nil {
			b.Fatal(err)
		}
		if r.Gains.N() > 0 {
			median = r.Gains.Quantile(0.5)
		}
	}
	b.ReportMetric(median, "median-gain")
}

// BenchmarkPollingSweep regenerates the §5 batch-size trade-off, reporting
// the light-traffic delay growth from the smallest to the largest batch.
func BenchmarkPollingSweep(b *testing.B) {
	var growth float64
	for i := 0; i < b.N; i++ {
		o := benchOpts(int64(i + 1))
		o.Duration = 1500 * sim.Millisecond
		r, err := exp.PollingSweep(o)
		if err != nil {
			b.Fatal(err)
		}
		if r.LightDelayUs[0] > 0 {
			growth = r.LightDelayUs[len(r.LightDelayUs)-1] / r.LightDelayUs[0]
		}
	}
	b.ReportMetric(growth, "light-delay-growth")
}

// BenchmarkLightLoad regenerates the §5 light-traffic delay comparison,
// reporting the DOMINO/DCF delay ratio (paper: 1.14x; this model pays more
// because batches gate light arrivals — see EXPERIMENTS.md).
func BenchmarkLightLoad(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := exp.LightLoad(benchOpts(1))
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.Ratio
	}
	b.ReportMetric(ratio, "delay-ratio")
}

// --- Parallel harness benches: serial vs all-cores on the fan-out drivers ---

// BenchmarkFig14Workers runs the Fig 14 Monte Carlo serially and across all
// cores. The results are bit-identical (per-run derived seeds, ordered CDF
// merge); only the wall clock should differ. cmd/benchreport records the
// speedup in BENCH_parallel.json.
func BenchmarkFig14Workers(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "allcores"
		}
		b.Run(name, func(b *testing.B) {
			var median float64
			for i := 0; i < b.N; i++ {
				o := benchOpts(1)
				o.Runs = 4
				o.Workers = workers
				r, err := exp.Fig14(o)
				if err != nil {
					b.Fatal(err)
				}
				if r.Gains.N() > 0 {
					median = r.Gains.Quantile(0.5)
				}
			}
			b.ReportMetric(median, "median-gain")
		})
	}
}

// BenchmarkFig9Workers runs the chip-level detection grid serially and
// across all cores.
func BenchmarkFig9Workers(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "allcores"
		}
		b.Run(name, func(b *testing.B) {
			var det4 float64
			for i := 0; i < b.N; i++ {
				o := benchOpts(1)
				o.Workers = workers
				r, err := exp.Fig9(o)
				if err != nil {
					b.Fatal(err)
				}
				det4 = r.Detected[0][3]
			}
			b.ReportMetric(det4, "detect@4")
		})
	}
}

// BenchmarkDetectionCurveWorkers shards the detection-curve Monte Carlo
// (the table phy.DefaultDetector encodes) serially and across all cores.
func BenchmarkDetectionCurveWorkers(b *testing.B) {
	set, err := gold.NewSet(7)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "allcores"
		}
		b.Run(name, func(b *testing.B) {
			var at4 float64
			for i := 0; i < b.N; i++ {
				curve := gold.MeasureDetectionCurve(set, 7, 200, 10, int64(i+1), workers)
				at4 = curve[4]
			}
			b.ReportMetric(at4, "detect@4")
		})
	}
}

// --- Ablation benches: the design choices DESIGN.md calls out ---

// BenchmarkAblationSignatureLength compares Gold-set generation plus one
// detection round across the signature lengths §5 discusses (127/511).
func BenchmarkAblationSignatureLength(b *testing.B) {
	for _, m := range []int{7, 9} {
		m := m
		b.Run(map[int]string{7: "len127", 9: "len511"}[m], func(b *testing.B) {
			set, err := gold.NewSet(m)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			var det float64
			for i := 0; i < b.N; i++ {
				r := gold.DetectionTrial(set, gold.Setup{Senders: 2, Mode: gold.DifferentSignatures},
					4, 20, 10, rng)
				det = r.Detected
			}
			b.ReportMetric(det, "detect@4")
			b.ReportMetric(float64(set.Count()), "codes")
		})
	}
}

// BenchmarkAblationTriggerRedundancy measures DOMINO throughput on the
// T(10,2) campus network with inbound trigger redundancy 1 vs 2 (the paper
// picks 2: backups matter once triggers can fail).
func BenchmarkAblationTriggerRedundancy(b *testing.B) {
	for _, inbound := range []int{1, 2} {
		inbound := inbound
		b.Run(map[int]string{1: "inbound1", 2: "inbound2"}[inbound], func(b *testing.B) {
			var agg float64
			for i := 0; i < b.N; i++ {
				r := core.Run(core.Scenario{
					Net:      mustT10x2(b, 1),
					Downlink: true, Uplink: true,
					Scheme: core.DOMINO, Traffic: core.Saturated,
					Duration: sim.Second, Seed: int64(i + 1),
					TuneDomino: func(c *domino.Config) { c.MaxInbound = inbound },
				})
				agg = r.AggregateMbps
			}
			b.ReportMetric(agg, "Mbps")
		})
	}
}

// BenchmarkAblationFakeCover measures the fake-link insertion's contribution
// (paper §3.3: the maximal cover keeps the whole network triggerable).
func BenchmarkAblationFakeCover(b *testing.B) {
	for _, off := range []bool{false, true} {
		off := off
		name := "cover-on"
		if off {
			name = "cover-off"
		}
		b.Run(name, func(b *testing.B) {
			var agg float64
			for i := 0; i < b.N; i++ {
				r := core.Run(core.Scenario{
					Net:      mustT10x2(b, 1),
					Downlink: true, Uplink: true,
					Scheme: core.DOMINO, Traffic: core.Saturated,
					Duration: sim.Second, Seed: int64(i + 1),
					TuneDomino: func(c *domino.Config) { c.NoFakeCover = off },
				})
				agg = r.AggregateMbps
			}
			b.ReportMetric(agg, "Mbps")
		})
	}
}

// BenchmarkAblationBatchSize sweeps the scheduling batch size at saturation
// (bigger batches amortise ROP overhead; §5).
func BenchmarkAblationBatchSize(b *testing.B) {
	for _, batch := range []int{8, 24, 48} {
		batch := batch
		b.Run(map[int]string{8: "batch8", 24: "batch24", 48: "batch48"}[batch], func(b *testing.B) {
			var agg float64
			for i := 0; i < b.N; i++ {
				r := core.Run(core.Scenario{
					Net:      mustT10x2(b, 1),
					Downlink: true, Uplink: true,
					Scheme: core.DOMINO, Traffic: core.Saturated,
					Duration: sim.Second, Seed: int64(i + 1),
					TuneDomino: func(c *domino.Config) { c.BatchSize = batch },
				})
				agg = r.AggregateMbps
			}
			b.ReportMetric(agg, "Mbps")
		})
	}
}

// BenchmarkAblationScheduler compares the RAND scheduler against
// longest-queue-first under saturation on T(10,2): the converter is
// scheduler-agnostic (paper contribution 1), so both run unmodified.
func BenchmarkAblationScheduler(b *testing.B) {
	for _, name := range []string{"rand", "lqf"} {
		name := name
		b.Run(name, func(b *testing.B) {
			var agg float64
			for i := 0; i < b.N; i++ {
				r := core.Run(core.Scenario{
					Net:      mustT10x2(b, 1),
					Downlink: true, Uplink: true,
					Scheme: core.DOMINO, Traffic: core.Saturated,
					Duration: sim.Second, Seed: int64(i + 1),
					TuneDomino: func(c *domino.Config) {
						if name == "lqf" {
							c.NewScheduler = func(g *topo.ConflictGraph) strict.Scheduler {
								return strict.NewLQF(g)
							}
						}
					},
				})
				agg = r.AggregateMbps
			}
			b.ReportMetric(agg, "Mbps")
		})
	}
}

// BenchmarkCoexist regenerates the §5 CFP/CoP sweep, reporting the external
// pair's share with a 5 ms contention period.
func BenchmarkCoexist(b *testing.B) {
	var ext float64
	for i := 0; i < b.N; i++ {
		r := exp.Coexist(benchOpts(int64(i + 1)))
		for j, c := range r.CoPMs {
			if c == 5 {
				ext = r.ExternalMbps[j]
			}
		}
	}
	b.ReportMetric(ext, "ext-Mbps@5ms")
}

// BenchmarkScale measures simulator performance across network sizes: one
// simulated second of saturated DOMINO, reporting delivered packets.
func BenchmarkScale(b *testing.B) {
	cases := []struct {
		name string
		net  func() *topo.Network
	}{
		{"2pairs", func() *topo.Network { return topo.TwoPairs(topo.ExposedTerminals) }},
		{"fig7", topo.Figure7},
		{"T10x2", func() *topo.Network { return mustT10x2(b, 1) }},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var agg float64
			for i := 0; i < b.N; i++ {
				r := core.Run(core.Scenario{
					Net: c.net(), Downlink: true, Uplink: true,
					Scheme: core.DOMINO, Traffic: core.Saturated,
					Duration: sim.Second, Seed: int64(i + 1),
				})
				agg = r.AggregateMbps
			}
			b.ReportMetric(agg, "Mbps")
		})
	}
}
